//! Deterministic tail-based trace sampling with a hard retention budget.
//!
//! A full [`crate::TraceSink`] keeps every frame's span tree, so a merged
//! fleet trace grows O(sessions × ticks) — fine for a handful of sessions,
//! fatal for always-on fleet observability. [`SamplingTraceSink`] consumes
//! the *same* recorder event stream but decides per frame, after the frame
//! has fully settled, whether its causal trace is worth keeping:
//!
//! - **Anomaly frames are always retained.** A frame is anomalous when it
//!   missed its deadline or carries any instant event (drop, ladder shift,
//!   NACK, fault activation, SLO breach, recovery transition, …).
//! - **±K context frames around every anomaly are retained.** The K frames
//!   *before* an anomaly come from a provisional ring that holds the most
//!   recent unretained frames; the K frames *after* are kept as they close.
//! - **A deterministic 1-in-M head-sampled baseline** (`frame % M == 0`)
//!   is retained so healthy steady-state behaviour stays visible.
//! - Everything else is evicted, and every eviction is counted — the
//!   ledger invariant `frames == retained + evicted` holds after a session
//!   ends, so nothing ever vanishes silently.
//!
//! Classification is **deferred by one frame**: the controller runs *after*
//! `end_frame`, so ladder-shift (and similar) instants attach to the frame
//! that just closed. The sampler therefore parks each closed frame in a
//! one-slot buffer and only classifies it when the next `FrameStart` (or
//! `SessionEnd`) proves no more instants can arrive. This is what makes
//! anomaly coverage exact rather than racy.
//!
//! A [`TraceBudget`] bounds memory: a per-session cap plus a fleet-wide cap
//! (enforced serially via [`enforce_fleet_cap`]). Eviction under budget
//! pressure removes the *oldest baseline* frames first and **never** touches
//! anomaly or context frames; when an anomaly is promoted, any retained
//! baseline inside its backward context window is upgraded to context so
//! budget pressure cannot punch holes into an anomaly's neighbourhood. An
//! all-anomaly storm can therefore exceed the budget — the budget is hard
//! for baseline mass and intentionally soft for evidence.
//!
//! Everything here is frame-counted and driven by modeled timestamps —
//! never wall-clock — so retained traces, counter tracks and the exported
//! Chrome JSON are byte-identical at any `GSS_THREADS`.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::hist::{Exemplar, Histogram};
use crate::sink::{json_f64, Event, Sink};
use crate::trace::{build_frame, chrome_trace_json_ext, CounterTrack, OpenFrame, TraceSession};
use crate::trace::{TraceFrame, TraceInstant};
use crate::Stage;

/// Per-session sampling counter-track names, in emission order:
/// currently-retained frames, cumulative evictions, cumulative anomalies
/// kept. Rendered as Chrome `C` counter tracks next to the session's lanes.
pub const SAMPLING_TRACKS: [&str; 3] = [
    "sampling-retained",
    "sampling-evicted",
    "sampling-anomaly-kept",
];

/// Retention caps for sampled traces.
///
/// Both caps count *frames*, not bytes: frame span trees have near-constant
/// size, and frame counts are deterministic where byte counts would couple
/// the policy to formatting. Caps apply to baseline frames only — see the
/// module docs for why anomaly/context frames are never evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceBudget {
    /// Maximum retained frames per session.
    pub per_session: usize,
    /// Maximum retained frames across every sink passed to
    /// [`enforce_fleet_cap`].
    pub fleet: usize,
}

impl Default for TraceBudget {
    fn default() -> Self {
        TraceBudget {
            per_session: 256,
            fleet: 4096,
        }
    }
}

/// The tail-sampling keep policy. All knobs are frame-counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingPolicy {
    /// Keep every M-th frame (`frame % M == 0`) as a healthy baseline.
    /// `0` disables baseline sampling entirely.
    pub baseline_period: u64,
    /// Context frames retained on each side of an anomaly (the ±K window).
    pub context_frames: u64,
    /// Retention caps.
    pub budget: TraceBudget,
}

impl Default for SamplingPolicy {
    fn default() -> Self {
        SamplingPolicy {
            baseline_period: 16,
            context_frames: 2,
            budget: TraceBudget::default(),
        }
    }
}

/// Why a retained frame was kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// The frame itself carried an anomaly (deadline miss or any instant).
    Anomaly,
    /// The frame sits inside the ±K window of a retained anomaly.
    Context,
    /// Deterministic 1-in-M head sample of healthy frames.
    Baseline,
}

impl KeepReason {
    /// Stable kebab-case label, used in exports and tests.
    pub fn label(self) -> &'static str {
        match self {
            KeepReason::Anomaly => "anomaly",
            KeepReason::Context => "context",
            KeepReason::Baseline => "baseline",
        }
    }
}

/// Snapshot of one sink's sampling ledger (aggregated over its sessions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SamplingStats {
    /// Frames fully classified so far.
    pub frames: u64,
    /// Frames currently retained.
    pub retained: u64,
    /// Cumulative evictions (ring overflow, budget and fleet-cap pressure,
    /// end-of-session ring drain).
    pub evicted: u64,
    /// Anomalous frames observed.
    pub anomaly_frames: u64,
    /// Anomalous frames retained (invariant: equals `anomaly_frames`).
    pub anomaly_kept: u64,
    /// Currently retained baseline frames.
    pub baseline_kept: u64,
    /// Currently retained context frames.
    pub context_kept: u64,
    /// Frames parked in provisional rings, still awaiting a keep/evict
    /// verdict (zero once a session has ended).
    pub pending: u64,
}

#[derive(Debug)]
struct RetainedFrame {
    reason: KeepReason,
    frame: TraceFrame,
}

#[derive(Debug, Default)]
struct SampledSession {
    label: String,
    /// In-flight frame (between `FrameStart` and `FrameEnd`).
    open: Option<OpenFrame>,
    /// Closed but not yet classified — waiting for the next `FrameStart`
    /// to prove no more post-frame instants can attach.
    closed: Option<TraceFrame>,
    /// Provisional ring of recent unretained frames (backward context).
    ring: VecDeque<TraceFrame>,
    retained: Vec<RetainedFrame>,
    /// Highest frame number still owed forward context, if any.
    retain_until: Option<u64>,
    frames: u64,
    evicted: u64,
    anomaly_frames: u64,
    anomaly_kept: u64,
    /// Latest modeled timestamp seen, used to stamp counter samples for
    /// out-of-band (fleet-cap) evictions.
    last_ts: f64,
    /// Change-only `(ts, value)` samples per [`SAMPLING_TRACKS`] entry.
    tracks: [Vec<(f64, f64)>; 3],
}

impl SampledSession {
    fn frame_ts(&mut self, frame: &TraceFrame) -> f64 {
        let ts = frame.spans[0].end_ms;
        if ts > self.last_ts {
            self.last_ts = ts;
        }
        self.last_ts
    }

    fn track_values(&self) -> [f64; 3] {
        [
            self.retained.len() as f64,
            self.evicted as f64,
            self.anomaly_kept as f64,
        ]
    }

    /// Appends change-only samples for every track whose value moved.
    fn sample_tracks(&mut self, ts: f64) {
        let values = self.track_values();
        for (track, value) in self.tracks.iter_mut().zip(values) {
            if track.last().map(|(_, v)| *v) != Some(value) {
                track.push((ts, value));
            }
        }
    }

    /// Drops ring frames too old to serve as backward context for any
    /// anomaly at `now` or later: a frame `p` can only sit in a window
    /// `[a - K, a - 1]` with `a >= now`, so `p + K < now` disqualifies it
    /// (strict, so `now`'s own window `[now - K, now - 1]` is preserved).
    fn prune_ring(&mut self, now: u64, k: u64) {
        while let Some(front) = self.ring.front() {
            if front.frame + k < now {
                self.ring.pop_front();
                self.evicted += 1;
            } else {
                break;
            }
        }
    }

    fn enforce_session_budget(&mut self, cap: usize) {
        while self.retained.len() > cap {
            let Some(pos) = self
                .retained
                .iter()
                .position(|r| r.reason == KeepReason::Baseline)
            else {
                break; // only anomaly/context mass left: budget goes soft
            };
            self.retained.remove(pos);
            self.evicted += 1;
        }
    }

    /// Classifies one settled frame. The heart of the tail sampler.
    fn classify(&mut self, frame: TraceFrame, policy: &SamplingPolicy) {
        self.frames += 1;
        let ts = self.frame_ts(&frame);
        let fno = frame.frame;
        let k = policy.context_frames;
        self.prune_ring(fno, k);
        let anomaly = !frame.deadline_met || !frame.instants.is_empty();
        if anomaly {
            self.anomaly_frames += 1;
            // Backward context: everything still in the ring is, after the
            // prune above, inside the window.
            for ctx in self.ring.drain(..) {
                self.retained.push(RetainedFrame {
                    reason: KeepReason::Context,
                    frame: ctx,
                });
            }
            // Upgrade retained baselines inside the backward window so
            // budget pressure cannot evict the anomaly's context later.
            for kept in self.retained.iter_mut().rev() {
                if kept.frame.frame + k < fno {
                    break;
                }
                if kept.reason == KeepReason::Baseline {
                    kept.reason = KeepReason::Context;
                }
            }
            self.retained.push(RetainedFrame {
                reason: KeepReason::Anomaly,
                frame,
            });
            self.anomaly_kept += 1;
            self.retain_until = Some(fno + k);
        } else if self.retain_until.is_some_and(|until| fno <= until) {
            self.retained.push(RetainedFrame {
                reason: KeepReason::Context,
                frame,
            });
        } else if policy.baseline_period > 0 && fno.is_multiple_of(policy.baseline_period) {
            self.retained.push(RetainedFrame {
                reason: KeepReason::Baseline,
                frame,
            });
        } else if k > 0 {
            self.ring.push_back(frame);
        } else {
            self.evicted += 1;
        }
        self.enforce_session_budget(policy.budget.per_session);
        self.sample_tracks(ts);
    }

    /// Classifies the parked closed frame, if any.
    fn settle_closed(&mut self, policy: &SamplingPolicy) {
        if let Some(frame) = self.closed.take() {
            self.classify(frame, policy);
        }
    }

    /// End of session: settle everything, then drain the ring — frames
    /// that never became context are now definitively evicted.
    fn finish(&mut self, policy: &SamplingPolicy) {
        self.settle_closed(policy);
        if let Some(open) = self.open.take() {
            // A dangling open frame never saw FrameEnd: close it as a miss
            // (which also marks it anomalous, so it is retained as
            // evidence of the truncation).
            let frame = build_frame(open, false);
            self.classify(frame, policy);
        }
        let drained = self.ring.len() as u64;
        self.ring.clear();
        self.evicted += drained;
        self.sample_tracks(self.last_ts);
    }

    fn stats(&self) -> SamplingStats {
        let mut baseline_kept = 0;
        let mut context_kept = 0;
        for r in &self.retained {
            match r.reason {
                KeepReason::Baseline => baseline_kept += 1,
                KeepReason::Context => context_kept += 1,
                KeepReason::Anomaly => {}
            }
        }
        SamplingStats {
            frames: self.frames,
            retained: self.retained.len() as u64,
            evicted: self.evicted,
            anomaly_frames: self.anomaly_frames,
            anomaly_kept: self.anomaly_kept,
            baseline_kept,
            context_kept,
            pending: self.ring.len() as u64,
        }
    }
}

#[derive(Debug)]
struct SampleState {
    policy: SamplingPolicy,
    sessions: Vec<SampledSession>,
}

/// A [`Sink`] that tail-samples the recorder event stream into a bounded
/// set of retained frame traces. Cloning shares the underlying state (the
/// [`crate::MemorySink`] pattern): hand one clone to the recorder and keep
/// the other to export after the session finishes.
#[derive(Debug, Clone)]
pub struct SamplingTraceSink {
    state: Arc<Mutex<SampleState>>,
}

impl Default for SamplingTraceSink {
    fn default() -> Self {
        SamplingTraceSink::new(SamplingPolicy::default())
    }
}

impl SamplingTraceSink {
    /// An empty sampling sink with the given keep policy.
    pub fn new(policy: SamplingPolicy) -> Self {
        SamplingTraceSink {
            state: Arc::new(Mutex::new(SampleState {
                policy,
                sessions: Vec::new(),
            })),
        }
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut SampleState) -> R) -> R {
        let mut state = self.state.lock().expect("sampling sink poisoned");
        f(&mut state)
    }

    fn current(state: &mut SampleState) -> &mut SampledSession {
        if state.sessions.is_empty() {
            // Events without a SessionStart (unit tests, bare recorders)
            // land in an implicit unlabelled session.
            state.sessions.push(SampledSession::default());
        }
        state.sessions.last_mut().expect("session exists")
    }

    fn open_frame(state: &mut SampleState, frame: u64) -> &mut OpenFrame {
        let session = Self::current(state);
        if session.open.is_none() {
            session.open = Some(OpenFrame {
                frame,
                ..OpenFrame::default()
            });
        }
        session.open.as_mut().expect("frame open")
    }

    /// The configured keep policy.
    pub fn policy(&self) -> SamplingPolicy {
        self.with_state(|s| s.policy)
    }

    /// Snapshot of every session's *retained* frames, with pids and trace
    /// ids assigned exactly like [`crate::TraceSink::sessions`], so a
    /// retained frame's `trace_id` matches its full-trace counterpart.
    pub fn sessions(&self) -> Vec<TraceSession> {
        self.with_state(|state| {
            state
                .sessions
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let pid = (i + 1) as u64;
                    let mut frames: Vec<TraceFrame> =
                        s.retained.iter().map(|r| r.frame.clone()).collect();
                    for f in &mut frames {
                        f.trace_id = pid * 1_000_000 + f.frame;
                    }
                    TraceSession {
                        label: s.label.clone(),
                        pid,
                        frames,
                    }
                })
                .collect()
        })
    }

    /// `(frame, reason)` pairs per session, in retention order — the raw
    /// ledger, for tests and triage.
    pub fn keep_reasons(&self) -> Vec<Vec<(u64, KeepReason)>> {
        self.with_state(|state| {
            state
                .sessions
                .iter()
                .map(|s| {
                    s.retained
                        .iter()
                        .map(|r| (r.frame.frame, r.reason))
                        .collect()
                })
                .collect()
        })
    }

    /// Aggregated sampling ledger across this sink's sessions.
    pub fn stats(&self) -> SamplingStats {
        self.with_state(|state| {
            let mut total = SamplingStats::default();
            for s in &state.sessions {
                let st = s.stats();
                total.frames += st.frames;
                total.retained += st.retained;
                total.evicted += st.evicted;
                total.anomaly_frames += st.anomaly_frames;
                total.anomaly_kept += st.anomaly_kept;
                total.baseline_kept += st.baseline_kept;
                total.context_kept += st.context_kept;
                total.pending += st.pending;
            }
            total
        })
    }

    /// Total frames currently retained across sessions.
    pub fn retained_count(&self) -> usize {
        self.with_state(|state| state.sessions.iter().map(|s| s.retained.len()).sum())
    }

    /// Frames the fleet cap may still evict (retained baselines).
    pub fn evictable_count(&self) -> usize {
        self.with_state(|state| {
            state
                .sessions
                .iter()
                .flat_map(|s| &s.retained)
                .filter(|r| r.reason == KeepReason::Baseline)
                .count()
        })
    }

    /// Evicts the oldest retained baseline frame (first session that has
    /// one), stamping the eviction on the counter tracks at `ts_ms`.
    /// Returns `false` when nothing is evictable.
    pub fn evict_oldest_baseline(&self, ts_ms: f64) -> bool {
        self.with_state(|state| {
            for session in &mut state.sessions {
                let Some(pos) = session
                    .retained
                    .iter()
                    .position(|r| r.reason == KeepReason::Baseline)
                else {
                    continue;
                };
                session.retained.remove(pos);
                session.evicted += 1;
                if ts_ms > session.last_ts {
                    session.last_ts = ts_ms;
                }
                let ts = session.last_ts;
                session.sample_tracks(ts);
                return true;
            }
            false
        })
    }

    /// Per-session [`SAMPLING_TRACKS`] counter tracks with pids matching
    /// [`SamplingTraceSink::sessions`]. Callers merging several sinks remap
    /// `pid` on the returned tracks. Empty tracks are omitted.
    pub fn counter_tracks(&self) -> Vec<CounterTrack> {
        self.with_state(|state| {
            let mut out = Vec::new();
            for (i, s) in state.sessions.iter().enumerate() {
                let pid = (i + 1) as u64;
                for (name, samples) in SAMPLING_TRACKS.iter().zip(&s.tracks) {
                    if !samples.is_empty() {
                        out.push(CounterTrack {
                            pid,
                            name: (*name).to_owned(),
                            samples: samples.clone(),
                        });
                    }
                }
            }
            out
        })
    }

    /// Renders the retained trace (plus sampling counter tracks) as a
    /// Chrome trace-event JSON document. Same determinism contract as
    /// [`crate::TraceSink::to_chrome_json`]: byte-identical output for
    /// identical event streams, at any worker count.
    pub fn to_chrome_json(&self) -> String {
        chrome_trace_json_ext(&self.sessions(), &[], &self.counter_tracks(), &[])
    }
}

impl Sink for SamplingTraceSink {
    fn emit(&mut self, event: &Event) {
        self.with_state(|state| {
            let policy = state.policy;
            match event {
                Event::SessionStart { label, .. } => {
                    state.sessions.push(SampledSession {
                        label: label.clone(),
                        ..SampledSession::default()
                    });
                }
                Event::FrameStart { frame } => {
                    let session = Self::current(state);
                    // The previous frame can no longer gain instants.
                    session.settle_closed(&policy);
                    if let Some(open) = session.open.take() {
                        // Dangling open frame: close as a miss, settle now.
                        let built = build_frame(open, false);
                        session.classify(built, &policy);
                    }
                    session.open = Some(OpenFrame {
                        frame: *frame,
                        ..OpenFrame::default()
                    });
                }
                Event::Span {
                    frame,
                    stage,
                    start_ms,
                    end_ms,
                } => {
                    let open = Self::open_frame(state, *frame);
                    open.spans.push((*stage, *start_ms, *end_ms));
                }
                Event::Instant {
                    frame,
                    kind,
                    ts_ms,
                    detail,
                } => {
                    let session = Self::current(state);
                    let instant = TraceInstant {
                        kind: *kind,
                        ts_ms: *ts_ms,
                        detail: detail.clone(),
                    };
                    if let Some(open) = session.open.as_mut() {
                        open.instants.push(instant);
                    } else if let Some(closed) = session.closed.as_mut() {
                        // Post-frame instants (ladder shifts decided after
                        // end_frame) join the frame that just closed —
                        // possible only because classification is deferred.
                        closed.instants.push(instant);
                    } else {
                        let open = Self::open_frame(state, *frame);
                        open.instants.push(instant);
                    }
                }
                Event::FrameEnd {
                    frame: _,
                    deadline_met,
                    ..
                } => {
                    let session = Self::current(state);
                    session.settle_closed(&policy);
                    if let Some(open) = session.open.take() {
                        session.closed = Some(build_frame(open, *deadline_met));
                    }
                }
                Event::SessionEnd { .. } => {
                    let session = Self::current(state);
                    session.finish(&policy);
                }
                Event::Count { .. } | Event::Gauge { .. } | Event::Log { .. } => {}
            }
        });
    }

    fn flush(&mut self) {}
}

/// Serially enforces the fleet-wide retention cap across a set of sampling
/// sinks: while the total retained frame count exceeds `cap`, evict one
/// baseline frame from the sink currently holding the *most* evictable
/// baselines (ties break to the lowest index — fair and deterministic).
/// Anomaly and context frames are never evicted, so the loop stops early
/// when only evidence remains. Returns the number of frames evicted;
/// evictions are stamped on the counter tracks at `ts_ms`.
pub fn enforce_fleet_cap(sinks: &[SamplingTraceSink], cap: usize, ts_ms: f64) -> u64 {
    let mut evicted = 0;
    loop {
        let total: usize = sinks.iter().map(|s| s.retained_count()).sum();
        if total <= cap {
            return evicted;
        }
        let mut best: Option<(usize, usize)> = None; // (evictable, index)
        for (i, sink) in sinks.iter().enumerate() {
            let e = sink.evictable_count();
            if e > 0 && best.is_none_or(|(be, _)| e > be) {
                best = Some((e, i));
            }
        }
        let Some((_, idx)) = best else {
            return evicted; // only anomaly/context mass left everywhere
        };
        if !sinks[idx].evict_oldest_baseline(ts_ms) {
            return evicted;
        }
        evicted += 1;
    }
}

/// Per-session trace-linked exemplars: for each pipeline stage (and for the
/// whole-frame envelope) the trace id of the worst *retained* frame, so a
/// p99 line in `figures triage` or a Prometheus snapshot links straight
/// into the sampled Chrome trace. See [`Exemplar`] for why the worst sample
/// is exactly the p99-bucket exemplar.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionExemplars {
    /// Session label (matches the traced session).
    pub label: String,
    /// Chrome pid of the traced session.
    pub pid: u64,
    /// Exemplar of the worst whole-frame envelope (root span duration).
    pub worst_frame: Option<Exemplar>,
    /// Per-stage exemplars, in [`Stage::ALL`] order; stages with no
    /// retained spans are omitted.
    pub stages: Vec<(Stage, Exemplar)>,
}

impl SessionExemplars {
    /// The exemplar for `stage`, if any retained frame exercised it.
    pub fn stage(&self, stage: Stage) -> Option<Exemplar> {
        self.stages
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, e)| *e)
    }

    /// Total exemplars carried (stages + worst-frame).
    pub fn count(&self) -> usize {
        self.stages.len() + usize::from(self.worst_frame.is_some())
    }
}

/// Builds per-(session, stage) latency-histogram exemplars from retained
/// traces: each stage's histogram is replayed from the retained span
/// durations via [`Histogram::record_with_exemplar`], so the exemplar is
/// *consistent by construction* — its trace id always names a retained
/// frame and its value is exactly that frame's span duration.
pub fn compute_exemplars(sessions: &[TraceSession]) -> Vec<SessionExemplars> {
    sessions
        .iter()
        .map(|session| {
            let mut root = Histogram::latency_ms();
            let mut stage_hists: Vec<Histogram> =
                Stage::ALL.iter().map(|_| Histogram::latency_ms()).collect();
            for frame in &session.frames {
                let envelope = &frame.spans[0];
                root.record_with_exemplar(envelope.end_ms - envelope.start_ms, frame.trace_id);
                for (i, stage) in Stage::ALL.iter().enumerate() {
                    for span in frame.stage_spans(*stage) {
                        stage_hists[i]
                            .record_with_exemplar(span.end_ms - span.start_ms, frame.trace_id);
                    }
                }
            }
            SessionExemplars {
                label: session.label.clone(),
                pid: session.pid,
                worst_frame: root.exemplar(),
                stages: Stage::ALL
                    .iter()
                    .zip(&stage_hists)
                    .filter_map(|(stage, hist)| hist.exemplar().map(|e| (*stage, e)))
                    .collect(),
            }
        })
        .collect()
}

/// Fleet-level roll-up of the sampling ledger across many sinks, plus the
/// exemplar count over the merged retained trace. Serialized separately
/// from `FleetReport` so a sampled run's report stays byte-identical to a
/// full-trace run of the same configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingSummary {
    /// Sampled sessions contributing to the ledger.
    pub sessions: u64,
    /// Frames classified.
    pub frames: u64,
    /// Frames currently retained.
    pub retained: u64,
    /// Cumulative evictions.
    pub evicted: u64,
    /// Anomalous frames observed.
    pub anomaly_frames: u64,
    /// Anomalous frames retained.
    pub anomaly_kept: u64,
    /// Retained baseline frames.
    pub baseline_kept: u64,
    /// Retained context frames.
    pub context_kept: u64,
    /// Exemplars over the retained trace (per-stage + worst-frame).
    pub exemplars: u64,
}

impl SamplingSummary {
    /// Rolls up the ledger across `sinks`, computing exemplars per sink
    /// over its retained sessions.
    pub fn collect(sinks: &[SamplingTraceSink]) -> SamplingSummary {
        let mut out = SamplingSummary {
            sessions: 0,
            frames: 0,
            retained: 0,
            evicted: 0,
            anomaly_frames: 0,
            anomaly_kept: 0,
            baseline_kept: 0,
            context_kept: 0,
            exemplars: 0,
        };
        for sink in sinks {
            let sessions = sink.sessions();
            out.sessions += sessions.len() as u64;
            for ex in compute_exemplars(&sessions) {
                out.exemplars += ex.count() as u64;
            }
            let st = sink.stats();
            out.frames += st.frames;
            out.retained += st.retained;
            out.evicted += st.evicted;
            out.anomaly_frames += st.anomaly_frames;
            out.anomaly_kept += st.anomaly_kept;
            out.baseline_kept += st.baseline_kept;
            out.context_kept += st.context_kept;
        }
        out
    }

    /// Retained fraction of classified frames (0 when no frames).
    pub fn retention_ratio(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.retained as f64 / self.frames as f64
        }
    }

    /// Fraction of observed anomalies retained — 1.0 by construction, and
    /// 1.0 when no anomaly occurred (full coverage of an empty set).
    pub fn anomaly_coverage(&self) -> f64 {
        if self.anomaly_frames == 0 {
            1.0
        } else {
            self.anomaly_kept as f64 / self.anomaly_frames as f64
        }
    }

    /// Deterministic single-line JSON.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sessions\":{},\"frames\":{},\"retained\":{},\"evicted\":{},\
             \"anomaly_frames\":{},\"anomaly_kept\":{},\"baseline_kept\":{},\
             \"context_kept\":{},\"exemplars\":{},\"retention_ratio\":{},\
             \"anomaly_coverage\":{}}}",
            self.sessions,
            self.frames,
            self.retained,
            self.evicted,
            self.anomaly_frames,
            self.anomaly_kept,
            self.baseline_kept,
            self.context_kept,
            self.exemplars,
            json_f64(self.retention_ratio()),
            json_f64(self.anomaly_coverage()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::InstantKind;
    use crate::{Recorder, SinkHandle};

    fn policy(m: u64, k: u64, per_session: usize) -> SamplingPolicy {
        SamplingPolicy {
            baseline_period: m,
            context_frames: k,
            budget: TraceBudget {
                per_session,
                fleet: usize::MAX,
            },
        }
    }

    fn sampler(p: SamplingPolicy) -> (SamplingTraceSink, Recorder) {
        let sink = SamplingTraceSink::new(p);
        let rec = Recorder::new("sampling-unit", 16.67).with_sink(SinkHandle::new(sink.clone()));
        (sink, rec)
    }

    /// One frame with a realistic span tree; `critical_ms` > 16.67 misses.
    fn record_frame(rec: &mut Recorder, frame: u64, critical_ms: f64, kind: Option<InstantKind>) {
        rec.begin_frame(frame);
        rec.record_span(Stage::Render, 0.0, 4.0);
        rec.record_span(Stage::Encode, 4.0, 2.0);
        rec.record_span(Stage::LinkTransfer, 6.0, 3.0);
        rec.record_span(Stage::Decode, 9.0, 1.5);
        if let Some(kind) = kind {
            rec.instant(kind, 10.0, "injected");
        }
        rec.end_frame(critical_ms + 5.0, critical_ms, 1000).unwrap();
    }

    fn reasons(sink: &SamplingTraceSink) -> Vec<(u64, KeepReason)> {
        sink.keep_reasons().remove(0)
    }

    #[test]
    fn baseline_is_head_sampled_one_in_m_and_the_ledger_balances() {
        let (sink, mut rec) = sampler(policy(4, 1, usize::MAX));
        for f in 0..12 {
            record_frame(&mut rec, f, 10.0, None);
        }
        rec.finish();
        assert_eq!(
            reasons(&sink),
            vec![
                (0, KeepReason::Baseline),
                (4, KeepReason::Baseline),
                (8, KeepReason::Baseline)
            ]
        );
        let st = sink.stats();
        assert_eq!(st.frames, 12);
        assert_eq!(st.retained, 3);
        assert_eq!(st.evicted, 9, "every unretained frame is counted out");
        assert_eq!(st.pending, 0, "ring drains at session end");
        assert_eq!(st.frames, st.retained + st.evicted);
    }

    #[test]
    fn anomaly_keeps_plus_minus_k_context() {
        let (sink, mut rec) = sampler(policy(0, 2, usize::MAX));
        for f in 0..10 {
            let kind = (f == 5).then_some(InstantKind::Nack);
            record_frame(&mut rec, f, 10.0, kind);
        }
        rec.finish();
        assert_eq!(
            reasons(&sink),
            vec![
                (3, KeepReason::Context),
                (4, KeepReason::Context),
                (5, KeepReason::Anomaly),
                (6, KeepReason::Context),
                (7, KeepReason::Context),
            ]
        );
        assert_eq!(sink.stats().anomaly_kept, 1);
    }

    #[test]
    fn deadline_miss_alone_is_an_anomaly() {
        let (sink, mut rec) = sampler(policy(0, 0, usize::MAX));
        record_frame(&mut rec, 0, 10.0, None);
        record_frame(&mut rec, 1, 30.0, None); // missed deadline
        record_frame(&mut rec, 2, 10.0, None);
        rec.finish();
        assert_eq!(reasons(&sink), vec![(1, KeepReason::Anomaly)]);
    }

    #[test]
    fn post_frame_instant_still_flips_the_closed_frame_to_anomaly() {
        // Ladder shifts are decided by the controller *after* end_frame and
        // attach to the frame that just closed; deferred classification
        // must catch them.
        let (sink, mut rec) = sampler(policy(0, 0, usize::MAX));
        record_frame(&mut rec, 0, 10.0, None);
        rec.instant(InstantKind::LadderShift, 20.0, "rung 0 -> 1");
        record_frame(&mut rec, 1, 10.0, None);
        rec.finish();
        assert_eq!(reasons(&sink), vec![(0, KeepReason::Anomaly)]);
    }

    #[test]
    fn budget_evicts_oldest_baselines_but_never_anomaly_or_context() {
        // Baselines at 0,2,4; anomaly at 5 with K=2 upgrades baseline 4 and
        // ring frame 3 to context. A budget of 3 then evicts baselines 0
        // and 2 — the anomaly window survives intact.
        let (sink, mut rec) = sampler(policy(2, 2, 3));
        for f in 0..8 {
            let kind = (f == 5).then_some(InstantKind::Drop);
            record_frame(&mut rec, f, 10.0, kind);
        }
        rec.finish();
        let kept = reasons(&sink);
        assert!(
            kept.iter().all(|(f, _)| [3, 4, 5, 6, 7].contains(f)),
            "anomaly window intact, old baselines gone: {kept:?}"
        );
        assert_eq!(
            kept.iter()
                .filter(|(_, r)| *r == KeepReason::Anomaly)
                .count(),
            1
        );
        let st = sink.stats();
        assert_eq!(st.anomaly_kept, st.anomaly_frames);
        assert_eq!(st.frames, st.retained + st.evicted);
    }

    #[test]
    fn all_anomaly_storm_overrides_the_budget() {
        // Every frame misses: the budget is soft for evidence — nothing is
        // evicted even with per_session = 2.
        let (sink, mut rec) = sampler(policy(0, 1, 2));
        for f in 0..20 {
            record_frame(&mut rec, f, 40.0, None);
        }
        rec.finish();
        let st = sink.stats();
        assert_eq!(st.anomaly_frames, 20);
        assert_eq!(st.retained, 20);
        assert_eq!(st.evicted, 0);
        assert_eq!(st.anomaly_kept, st.anomaly_frames);
    }

    #[test]
    fn budget_zero_still_keeps_anomalies_only() {
        let (sink, mut rec) = sampler(policy(1, 0, 0));
        for f in 0..6 {
            let kind = (f == 3).then_some(InstantKind::Fault);
            record_frame(&mut rec, f, 10.0, kind);
        }
        rec.finish();
        assert_eq!(reasons(&sink), vec![(3, KeepReason::Anomaly)]);
        assert_eq!(sink.stats().evicted, 5);
    }

    #[test]
    fn budget_smaller_than_one_anomaly_window_keeps_the_whole_window() {
        let (sink, mut rec) = sampler(policy(0, 3, 2));
        for f in 0..12 {
            let kind = (f == 6).then_some(InstantKind::SloBreach);
            record_frame(&mut rec, f, 10.0, kind);
        }
        rec.finish();
        // ±3 around frame 6 → 7 frames, all kept despite per_session = 2.
        assert_eq!(sink.retained_count(), 7);
        let kept = reasons(&sink);
        for f in 3..=9 {
            assert!(kept.iter().any(|(kf, _)| *kf == f), "frame {f} missing");
        }
    }

    #[test]
    fn fleet_cap_evicts_from_the_largest_sink_first_ties_to_lowest_index() {
        let mk = |frames: u64| {
            let (sink, mut rec) = sampler(policy(1, 0, usize::MAX));
            for f in 0..frames {
                record_frame(&mut rec, f, 10.0, None);
            }
            rec.finish();
            sink
        };
        let sinks = vec![mk(2), mk(5), mk(5)];
        assert_eq!(enforce_fleet_cap(&sinks, 9, 100.0), 3);
        let counts: Vec<usize> = sinks.iter().map(|s| s.retained_count()).collect();
        // 5,5 → largest; after one eviction each the tie breaks to index 1.
        assert_eq!(counts, vec![2, 3, 4]);
        assert_eq!(enforce_fleet_cap(&sinks, 9, 100.0), 0, "already under cap");
    }

    #[test]
    fn fleet_cap_never_evicts_anomaly_mass() {
        let (sink, mut rec) = sampler(policy(0, 0, usize::MAX));
        for f in 0..10 {
            record_frame(&mut rec, f, 40.0, None); // all anomalies
        }
        rec.finish();
        let sinks = vec![sink];
        assert_eq!(enforce_fleet_cap(&sinks, 2, 100.0), 0);
        assert_eq!(sinks[0].retained_count(), 10);
    }

    #[test]
    fn retained_frames_match_their_full_trace_counterparts() {
        let run_both = || {
            let full = crate::TraceSink::new();
            let sampled = SamplingTraceSink::new(policy(4, 1, usize::MAX));
            let fan = SinkHandle::fanout(vec![
                SinkHandle::new(full.clone()),
                SinkHandle::new(sampled.clone()),
            ]);
            let mut rec = Recorder::new("dual", 16.67).with_sink(fan);
            for f in 0..16 {
                let kind = (f == 9).then_some(InstantKind::Nack);
                record_frame(&mut rec, f, 10.0, kind);
            }
            rec.finish();
            (full, sampled)
        };
        let (full, sampled) = run_both();
        let full_frames = &full.sessions()[0].frames;
        for frame in &sampled.sessions()[0].frames {
            let twin = full_frames
                .iter()
                .find(|f| f.frame == frame.frame)
                .expect("retained frame exists in the full trace");
            assert_eq!(twin, frame, "retained frame {} diverged", frame.frame);
        }
    }

    #[test]
    fn export_is_byte_deterministic_and_carries_sampling_tracks() {
        let run = || {
            let (sink, mut rec) = sampler(policy(4, 1, 4));
            for f in 0..24 {
                let kind = (f % 7 == 5).then_some(InstantKind::Drop);
                record_frame(&mut rec, f, if f == 11 { 30.0 } else { 10.0 }, kind);
            }
            rec.finish();
            sink.to_chrome_json()
        };
        let a = run();
        assert_eq!(a, run(), "same inputs must export byte-identical JSON");
        let doc = crate::json::parse(&a).expect("export parses as JSON");
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        for name in SAMPLING_TRACKS {
            assert!(
                events.iter().any(|e| {
                    e.get("ph").and_then(|p| p.as_str()) == Some("C")
                        && e.get("name").and_then(|n| n.as_str()) == Some(name)
                }),
                "missing counter track {name}"
            );
        }
    }

    #[test]
    fn exemplars_are_consistent_with_retained_frames() {
        let (sink, mut rec) = sampler(policy(4, 1, usize::MAX));
        for f in 0..20 {
            let kind = (f == 13).then_some(InstantKind::Recovery);
            record_frame(&mut rec, f, if f == 13 { 30.0 } else { 10.0 }, kind);
        }
        rec.finish();
        let sessions = sink.sessions();
        let exemplars = compute_exemplars(&sessions);
        assert_eq!(exemplars.len(), 1);
        let ex = &exemplars[0];
        assert!(ex.count() > 0);
        for (stage, e) in &ex.stages {
            let frame = sessions[0]
                .frames
                .iter()
                .find(|f| f.trace_id == e.trace_id)
                .expect("exemplar names a retained frame");
            assert!(
                frame
                    .stage_spans(*stage)
                    .iter()
                    .any(|s| (s.end_ms - s.start_ms) == e.value),
                "exemplar value is an exact retained span duration"
            );
        }
        let worst = ex.worst_frame.expect("worst-frame exemplar");
        let frame = sessions[0]
            .frames
            .iter()
            .find(|f| f.trace_id == worst.trace_id)
            .unwrap();
        let root = &frame.spans[0];
        assert_eq!(worst.value, root.end_ms - root.start_ms);
    }

    #[test]
    fn summary_rolls_up_and_serializes_deterministically() {
        let (sink, mut rec) = sampler(policy(4, 1, usize::MAX));
        for f in 0..16 {
            let kind = (f == 6).then_some(InstantKind::Drop);
            record_frame(&mut rec, f, 10.0, kind);
        }
        rec.finish();
        let summary = SamplingSummary::collect(std::slice::from_ref(&sink));
        assert_eq!(summary.sessions, 1);
        assert_eq!(summary.frames, 16);
        assert_eq!(summary.anomaly_coverage(), 1.0);
        assert!(summary.retention_ratio() > 0.0 && summary.retention_ratio() < 1.0);
        let json = summary.to_json();
        assert_eq!(json, SamplingSummary::collect(&[sink]).to_json());
        assert!(crate::json::parse(&json).is_ok(), "summary is valid JSON");
        assert!(json.contains("\"anomaly_coverage\":1"));
    }
}
