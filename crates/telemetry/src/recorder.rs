//! The frame-scoped recorder: the single object threaded through the
//! pipeline.
//!
//! A [`Recorder`] owns fixed-size aggregate state (one histogram per stage,
//! counter and gauge arrays, an inline span stack), so the per-frame hot
//! path performs no heap allocation. When a [`SinkHandle`] is attached it
//! additionally streams fine-grained [`Event`]s; without one, recording is
//! pure array arithmetic.
//!
//! Two span APIs coexist deliberately:
//!
//! - [`Recorder::record_span`] is a one-shot `(stage, start, duration)`
//!   record. The simulated pipeline has genuinely *overlapping* stages (RoI
//!   search overlaps encode on the server; NPU super-resolution runs in
//!   parallel with GPU interpolation on the client), which a strict stack
//!   cannot express, so the pipeline integration uses this form.
//! - [`Recorder::span_open`] / [`Recorder::span_close`] is a checked
//!   LIFO bracket API for callers with properly nested phases; it reports
//!   imbalance, mismatched closes and overflow as typed errors, and
//!   [`Recorder::end_frame`] refuses to close a frame with spans still open.

use crate::hist::Histogram;
use crate::sink::{Event, InstantKind, Level, SinkHandle};
use crate::summary::{CounterSummary, GaugeSummary, StageSummary, TelemetrySummary};
use crate::{Counter, Gauge, GaugeStat, Stage};

/// Maximum depth of the checked span stack. Ten pipeline stages with a
/// couple of synthetic wrappers fit comfortably; deeper nesting is a bug.
pub const MAX_SPAN_DEPTH: usize = 16;

/// Errors surfaced by the checked span API.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TelemetryError {
    /// `span_open` would exceed [`MAX_SPAN_DEPTH`].
    SpanOverflow {
        /// The stage whose open was rejected.
        stage: Stage,
    },
    /// `span_close` was called with no span open.
    SpanUnderflow {
        /// The stage whose close was rejected.
        stage: Stage,
    },
    /// `span_close` named a different stage than the innermost open span.
    SpanMismatch {
        /// The innermost open stage that should have been closed.
        expected: Stage,
        /// The stage the caller tried to close.
        found: Stage,
    },
    /// `end_frame` was called with spans still open.
    UnbalancedSpans {
        /// How many spans were still open.
        open: usize,
    },
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::SpanOverflow { stage } => {
                write!(f, "span stack overflow opening {}", stage.label())
            }
            TelemetryError::SpanUnderflow { stage } => {
                write!(f, "span close for {} with no span open", stage.label())
            }
            TelemetryError::SpanMismatch { expected, found } => write!(
                f,
                "span close mismatch: expected {}, found {}",
                expected.label(),
                found.label()
            ),
            TelemetryError::UnbalancedSpans { open } => {
                write!(f, "frame ended with {open} span(s) still open")
            }
        }
    }
}

impl std::error::Error for TelemetryError {}

/// Frame-scoped telemetry recorder. See the module docs for the design.
#[derive(Debug)]
pub struct Recorder {
    label: String,
    budget_ms: f64,
    sink: Option<SinkHandle>,
    frame: u64,
    frames: u64,
    deadline_misses: u64,
    stage_hists: [Histogram; Stage::COUNT],
    mtp_hist: Histogram,
    bytes_hist: Histogram,
    counters: [u64; Counter::COUNT],
    gauges: [GaugeStat; Gauge::COUNT],
    stack: [(Stage, f64); MAX_SPAN_DEPTH],
    depth: usize,
}

impl Recorder {
    /// A recorder for a session judged against `budget_ms` per frame.
    pub fn new(label: impl Into<String>, budget_ms: f64) -> Self {
        Recorder {
            label: label.into(),
            budget_ms,
            sink: None,
            frame: 0,
            frames: 0,
            deadline_misses: 0,
            stage_hists: std::array::from_fn(|_| Histogram::latency_ms()),
            mtp_hist: Histogram::latency_ms(),
            bytes_hist: Histogram::bytes(),
            counters: [0; Counter::COUNT],
            gauges: [GaugeStat::default(); Gauge::COUNT],
            stack: [(Stage::Render, 0.0); MAX_SPAN_DEPTH],
            depth: 0,
        }
    }

    /// Attaches a sink and announces the session on it.
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        sink.emit(&Event::SessionStart {
            label: self.label.clone(),
            budget_ms: self.budget_ms,
        });
        self.sink = Some(sink);
        self
    }

    /// The session label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The per-frame deadline budget in milliseconds.
    pub fn budget_ms(&self) -> f64 {
        self.budget_ms
    }

    /// Frames completed so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Exemplar of the worst motion-to-photon frame so far: its frame
    /// number (as the exemplar id) and exact MTP milliseconds. `None`
    /// until the first [`Recorder::end_frame`].
    pub fn worst_frame(&self) -> Option<crate::hist::Exemplar> {
        self.mtp_hist.exemplar()
    }

    /// How many spans are currently open on the checked stack.
    pub fn open_spans(&self) -> usize {
        self.depth
    }

    fn emit(&self, event: Event) {
        if let Some(sink) = &self.sink {
            sink.emit(&event);
        }
    }

    /// Marks the start of frame `frame`.
    pub fn begin_frame(&mut self, frame: u64) {
        self.frame = frame;
        if self.sink.is_some() {
            self.emit(Event::FrameStart { frame });
        }
    }

    /// Records a completed stage span in one shot. This is the form the
    /// pipeline uses: overlapping stages (NPU ∥ GPU) are recorded as two
    /// spans with overlapping `[start, start+duration]` intervals.
    pub fn record_span(&mut self, stage: Stage, start_ms: f64, duration_ms: f64) {
        self.stage_hists[stage.index()].record(duration_ms);
        if self.sink.is_some() {
            self.emit(Event::Span {
                frame: self.frame,
                stage,
                start_ms,
                end_ms: start_ms + duration_ms,
            });
        }
    }

    /// Opens a checked span for `stage` at `start_ms`.
    pub fn span_open(&mut self, stage: Stage, start_ms: f64) -> Result<(), TelemetryError> {
        if self.depth == MAX_SPAN_DEPTH {
            return Err(TelemetryError::SpanOverflow { stage });
        }
        self.stack[self.depth] = (stage, start_ms);
        self.depth += 1;
        Ok(())
    }

    /// Closes the innermost open span, which must be `stage`, at `end_ms`.
    pub fn span_close(&mut self, stage: Stage, end_ms: f64) -> Result<(), TelemetryError> {
        if self.depth == 0 {
            return Err(TelemetryError::SpanUnderflow { stage });
        }
        let (open_stage, start_ms) = self.stack[self.depth - 1];
        if open_stage != stage {
            return Err(TelemetryError::SpanMismatch {
                expected: open_stage,
                found: stage,
            });
        }
        self.depth -= 1;
        self.record_span(stage, start_ms, (end_ms - start_ms).max(0.0));
        Ok(())
    }

    /// Increments `counter` by one.
    pub fn incr(&mut self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Increments `counter` by `delta`.
    pub fn add(&mut self, counter: Counter, delta: u64) {
        self.counters[counter.index()] += delta;
        if self.sink.is_some() {
            self.emit(Event::Count {
                frame: self.frame,
                counter,
                delta,
            });
        }
    }

    /// Records a gauge observation.
    pub fn gauge(&mut self, gauge: Gauge, value: f64) {
        self.gauges[gauge.index()].observe(value);
        if self.sink.is_some() {
            self.emit(Event::Gauge {
                frame: self.frame,
                gauge,
                value,
            });
        }
    }

    /// Emits a structured log line on the sink (aggregates are unaffected).
    pub fn log(&mut self, level: Level, message: impl Into<String>) {
        if self.sink.is_some() {
            self.emit(Event::Log {
                level,
                message: message.into(),
            });
        }
    }

    /// Emits a causal instant event at modeled time `ts_ms` on the sink,
    /// attributed to the current frame (aggregates are unaffected). The
    /// trace exporter renders these as Perfetto instant markers.
    pub fn instant(&mut self, kind: InstantKind, ts_ms: f64, detail: impl Into<String>) {
        if self.sink.is_some() {
            self.emit(Event::Instant {
                frame: self.frame,
                kind,
                ts_ms,
                detail: detail.into(),
            });
        }
    }

    /// Current value of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// Closes the current frame: records whole-frame motion-to-photon time
    /// and wire bytes, checks the deadline, and returns whether the frame
    /// met it. Fails if checked spans are still open.
    ///
    /// `mtp_ms` is the end-to-end motion-to-photon latency (histogrammed);
    /// `critical_ms` is the per-frame critical path of the pipelined stage
    /// that must keep up with the frame rate, and is what the deadline
    /// budget judges: a 60 FPS pipeline must *finish a frame* every
    /// 16.66 ms even though each frame's end-to-end latency is longer.
    /// Callers without that distinction can pass the same value for both.
    pub fn end_frame(
        &mut self,
        mtp_ms: f64,
        critical_ms: f64,
        bytes: u64,
    ) -> Result<bool, TelemetryError> {
        if self.depth != 0 {
            return Err(TelemetryError::UnbalancedSpans { open: self.depth });
        }
        // Tag the MTP sample with the frame number so the worst frame is
        // recoverable as an exemplar (the exporter upgrades it to a full
        // trace id once the session's pid is known).
        self.mtp_hist.record_with_exemplar(mtp_ms, self.frame);
        self.bytes_hist.record(bytes as f64);
        // Matches the session simulator's real-time test: a frame is on time
        // when it fits the budget up to float noise.
        let deadline_met = crate::deadline_met(critical_ms, self.budget_ms);
        if !deadline_met {
            self.deadline_misses += 1;
            self.counters[Counter::DeadlineMisses.index()] += 1;
        }
        self.frames += 1;
        if self.sink.is_some() {
            self.emit(Event::FrameEnd {
                frame: self.frame,
                mtp_ms,
                bytes,
                deadline_met,
            });
        }
        Ok(deadline_met)
    }

    /// Builds the aggregate summary without consuming the recorder.
    pub fn summary(&self) -> TelemetrySummary {
        let mut stages = Vec::new();
        for stage in Stage::ALL {
            if let Some(dist) = self.stage_hists[stage.index()].summary() {
                stages.push(StageSummary { stage, dist });
            }
        }
        let mut counters = Vec::new();
        for counter in Counter::ALL {
            let value = self.counters[counter.index()];
            if value != 0 {
                counters.push(CounterSummary { counter, value });
            }
        }
        let mut gauges = Vec::new();
        for gauge in Gauge::ALL {
            let stats = self.gauges[gauge.index()];
            if stats.count != 0 {
                gauges.push(GaugeSummary { gauge, stats });
            }
        }
        TelemetrySummary {
            label: self.label.clone(),
            frames: self.frames,
            budget_ms: self.budget_ms,
            deadline_misses: self.deadline_misses,
            stages,
            mtp_ms: self.mtp_hist.summary(),
            frame_bytes: self.bytes_hist.summary(),
            counters,
            gauges,
        }
    }

    /// Announces session end on the sink, flushes it, and returns the
    /// summary.
    pub fn finish(&mut self) -> TelemetrySummary {
        if let Some(sink) = &self.sink {
            sink.emit(&Event::SessionEnd {
                label: self.label.clone(),
                frames: self.frames,
                deadline_misses: self.deadline_misses,
            });
            sink.flush();
        }
        self.summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn spans_counters_and_deadlines_aggregate() {
        let mut rec = Recorder::new("unit", 16.0);
        for frame in 0..10u64 {
            rec.begin_frame(frame);
            rec.record_span(Stage::Render, 0.0, 4.0);
            rec.record_span(Stage::Encode, 4.0, 2.0);
            rec.incr(Counter::FramesEncoded);
            rec.add(Counter::BytesOnWire, 1000);
            rec.gauge(Gauge::RoiAreaPx, 128.0 * 128.0);
            let mtp = if frame == 9 { 20.0 } else { 10.0 };
            let met = rec.end_frame(mtp, mtp, 1000).unwrap();
            assert_eq!(met, frame != 9);
        }
        let s = rec.summary();
        assert_eq!(s.frames, 10);
        assert_eq!(s.deadline_misses, 1);
        assert_eq!(rec.counter(Counter::FramesEncoded), 10);
        assert_eq!(rec.counter(Counter::BytesOnWire), 10_000);
        assert_eq!(rec.counter(Counter::DeadlineMisses), 1);
        let render = s.stage(Stage::Render).expect("render stage recorded");
        assert_eq!(render.dist.p50, 4.0);
        assert_eq!(render.dist.p99, 4.0);
        assert_eq!(s.mtp_ms.unwrap().count, 10);
        assert_eq!(s.frame_bytes.unwrap().p50, 1000.0);
    }

    #[test]
    fn worst_frame_exemplar_follows_the_mtp_maximum() {
        let mut rec = Recorder::new("unit", 16.0);
        assert_eq!(rec.worst_frame(), None);
        for (frame, mtp) in [(0u64, 14.0), (1, 31.5), (2, 12.0)] {
            rec.begin_frame(frame);
            rec.end_frame(mtp, mtp, 100).unwrap();
        }
        let worst = rec.worst_frame().unwrap();
        assert_eq!(worst.trace_id, 1);
        assert_eq!(worst.value, 31.5);
    }

    #[test]
    fn checked_spans_balance() {
        let mut rec = Recorder::new("unit", 16.0);
        rec.begin_frame(0);
        rec.span_open(Stage::Decode, 0.0).unwrap();
        rec.span_open(Stage::NpuSr, 1.0).unwrap();
        assert_eq!(rec.open_spans(), 2);
        rec.span_close(Stage::NpuSr, 4.0).unwrap();
        rec.span_close(Stage::Decode, 5.0).unwrap();
        assert_eq!(rec.open_spans(), 0);
        assert!(rec.end_frame(5.0, 5.0, 0).is_ok());
        let s = rec.summary();
        assert_eq!(s.stage(Stage::NpuSr).unwrap().dist.p95, 3.0);
        assert_eq!(s.stage(Stage::Decode).unwrap().dist.p95, 5.0);
    }

    #[test]
    fn mismatched_close_is_reported() {
        let mut rec = Recorder::new("unit", 16.0);
        rec.span_open(Stage::Decode, 0.0).unwrap();
        let err = rec.span_close(Stage::Merge, 1.0).unwrap_err();
        assert_eq!(
            err,
            TelemetryError::SpanMismatch {
                expected: Stage::Decode,
                found: Stage::Merge
            }
        );
        // The mismatched close must not pop the stack.
        assert_eq!(rec.open_spans(), 1);
    }

    #[test]
    fn underflow_and_overflow_are_reported() {
        let mut rec = Recorder::new("unit", 16.0);
        assert_eq!(
            rec.span_close(Stage::Render, 1.0).unwrap_err(),
            TelemetryError::SpanUnderflow {
                stage: Stage::Render
            }
        );
        for i in 0..MAX_SPAN_DEPTH {
            rec.span_open(Stage::Render, i as f64).unwrap();
        }
        assert_eq!(
            rec.span_open(Stage::Render, 99.0).unwrap_err(),
            TelemetryError::SpanOverflow {
                stage: Stage::Render
            }
        );
    }

    #[test]
    fn end_frame_rejects_open_spans() {
        let mut rec = Recorder::new("unit", 16.0);
        rec.begin_frame(0);
        rec.span_open(Stage::Render, 0.0).unwrap();
        assert_eq!(
            rec.end_frame(5.0, 5.0, 0).unwrap_err(),
            TelemetryError::UnbalancedSpans { open: 1 }
        );
    }

    #[test]
    fn sink_receives_the_event_stream() {
        let mem = MemorySink::new();
        let mut rec = Recorder::new("sinky", 16.0).with_sink(SinkHandle::new(mem.clone()));
        rec.begin_frame(0);
        rec.record_span(Stage::Render, 0.0, 4.0);
        rec.incr(Counter::FramesEncoded);
        rec.end_frame(10.0, 10.0, 500).unwrap();
        rec.finish();
        let events = mem.events();
        assert!(matches!(events[0], Event::SessionStart { .. }));
        assert!(matches!(events[1], Event::FrameStart { frame: 0 }));
        assert!(matches!(
            events[2],
            Event::Span {
                stage: Stage::Render,
                ..
            }
        ));
        assert!(matches!(
            events[3],
            Event::Count {
                counter: Counter::FramesEncoded,
                ..
            }
        ));
        assert!(matches!(
            events[4],
            Event::FrameEnd {
                deadline_met: true,
                ..
            }
        ));
        assert!(matches!(
            events.last(),
            Some(Event::SessionEnd { frames: 1, .. })
        ));
    }

    #[test]
    fn instants_carry_the_current_frame() {
        let mem = MemorySink::new();
        let mut rec = Recorder::new("inst", 16.0).with_sink(SinkHandle::new(mem.clone()));
        rec.begin_frame(7);
        rec.instant(InstantKind::Nack, 120.25, "block 3");
        rec.end_frame(1.0, 1.0, 0).unwrap();
        let events = mem.events();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Instant {
                frame: 7,
                kind: InstantKind::Nack,
                ..
            }
        )));
    }

    #[test]
    fn no_sink_means_no_events_but_full_aggregates() {
        let mut rec = Recorder::new("quiet", 16.0);
        rec.begin_frame(0);
        rec.record_span(Stage::Render, 0.0, 4.0);
        rec.end_frame(4.0, 4.0, 100).unwrap();
        let s = rec.finish();
        assert_eq!(s.frames, 1);
        assert!(s.stage(Stage::Render).is_some());
    }

    #[test]
    fn identical_inputs_yield_identical_summaries() {
        let run = || {
            let mut rec = Recorder::new("det", 16.67);
            for frame in 0..50u64 {
                rec.begin_frame(frame);
                let wobble = (frame % 7) as f64 * 0.31;
                rec.record_span(Stage::Render, 0.0, 4.2 + wobble);
                rec.record_span(Stage::NpuSr, 8.0, 6.1 + wobble);
                rec.gauge(Gauge::RoiAreaPx, 96.0 * 96.0 + wobble);
                rec.add(Counter::BytesOnWire, 900 + frame);
                rec.end_frame(14.0 + wobble, 14.0 + wobble, 900 + frame)
                    .unwrap();
            }
            rec.finish().to_json()
        };
        assert_eq!(run(), run());
    }
}
