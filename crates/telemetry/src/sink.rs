//! Telemetry events and pluggable sinks.
//!
//! A [`Recorder`](crate::Recorder) always maintains its in-memory aggregates
//! (histograms, counters, gauges); attaching a sink additionally streams
//! every fine-grained [`Event`] somewhere — into a buffer for tests
//! ([`MemorySink`]), onto disk as JSON Lines ([`JsonlSink`]), or nowhere
//! ([`NullSink`]). Sinks are behind a [`SinkHandle`] (`Arc<Mutex<…>>`) so
//! one sink can serve several recorders, e.g. the paired ours/SOTA sessions
//! of a comparison run writing interleaved into one JSONL file.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::{Counter, Gauge, Stage};

/// Severity of a [`Event::Log`] message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum Level {
    /// Routine progress information.
    Info,
    /// Something degraded but the run continues.
    Warn,
    /// A hard failure worth surfacing in any downstream tooling.
    Error,
}

impl Level {
    /// Lower-case label used in serialized events.
    pub fn label(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// What a point-in-time [`Event::Instant`] marks on the frame timeline.
///
/// Instants are the causal annotations of a trace: they pin *why* a frame
/// went wrong (or changed configuration) to the exact simulated instant it
/// happened, so a timeline viewer can correlate them with the stage spans
/// around them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum InstantKind {
    /// The frame's critical path exceeded the real-time budget.
    DeadlineMiss,
    /// The link dropped the frame (detail carries the [`DropCause`] label).
    ///
    /// [`DropCause`]: https://docs.rs/gss-net
    Drop,
    /// The degradation ladder moved to a different rung.
    LadderShift,
    /// The client requested a keyframe (NACK), fresh or re-issued.
    Nack,
    /// The set of active scripted faults changed.
    Fault,
    /// A service-level objective entered or left breach (detail carries
    /// the objective name and its burn rates).
    SloBreach,
    /// The decoder-crash recovery state machine changed state (detail
    /// carries the transition: crash detected, reconfigure attempt,
    /// keyframe resync, safe-profile fallback).
    Recovery,
    /// A streaming anomaly detector fired (detail carries the detector's
    /// description: rung flap, starvation, or admission storm).
    Anomaly,
}

impl InstantKind {
    /// Kebab-case label used in serialized events and trace exports.
    pub fn label(self) -> &'static str {
        match self {
            InstantKind::DeadlineMiss => "deadline-miss",
            InstantKind::Drop => "drop",
            InstantKind::LadderShift => "ladder-shift",
            InstantKind::Nack => "nack",
            InstantKind::Fault => "fault",
            InstantKind::SloBreach => "slo-breach",
            InstantKind::Recovery => "recovery",
            InstantKind::Anomaly => "anomaly",
        }
    }
}

/// One telemetry event, in session order.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A recorder came online.
    SessionStart {
        /// Human-readable session label (e.g. `"ours @ S8 Tab (wifi)"`).
        label: String,
        /// Frame deadline the session is judged against, in milliseconds.
        budget_ms: f64,
    },
    /// A new frame began.
    FrameStart {
        /// Zero-based frame index.
        frame: u64,
    },
    /// A pipeline stage ran over `[start_ms, end_ms]` on the frame timeline.
    Span {
        /// Frame the span belongs to.
        frame: u64,
        /// Which pipeline stage ran.
        stage: Stage,
        /// Stage start on the session clock, in milliseconds.
        start_ms: f64,
        /// Stage end on the session clock, in milliseconds.
        end_ms: f64,
    },
    /// A counter was bumped.
    Count {
        /// Frame during which the increment happened.
        frame: u64,
        /// Which counter.
        counter: Counter,
        /// Increment amount (1 for plain events, byte counts for traffic).
        delta: u64,
    },
    /// A gauge observed a new value.
    Gauge {
        /// Frame during which the observation happened.
        frame: u64,
        /// Which gauge.
        gauge: Gauge,
        /// Observed value.
        value: f64,
    },
    /// A point event on the frame timeline: a deadline miss, a drop with
    /// its cause, a ladder-rung shift, a NACK, or a fault-set change.
    Instant {
        /// Frame the instant belongs to.
        frame: u64,
        /// What the instant marks.
        kind: InstantKind,
        /// When it happened on the session clock, in milliseconds.
        ts_ms: f64,
        /// Human-readable detail (e.g. the drop cause or the new rung).
        detail: String,
    },
    /// A frame completed.
    FrameEnd {
        /// Zero-based frame index.
        frame: u64,
        /// Motion-to-photon latency of this frame, in milliseconds.
        mtp_ms: f64,
        /// Bytes this frame put on the wire.
        bytes: u64,
        /// Whether `mtp_ms` met the session deadline budget.
        deadline_met: bool,
    },
    /// A structured log line (replaces ad-hoc `eprintln!` in the tools).
    Log {
        /// Severity.
        level: Level,
        /// Message text.
        message: String,
    },
    /// A recorder finished.
    SessionEnd {
        /// Session label, matching the `SessionStart`.
        label: String,
        /// Frames completed.
        frames: u64,
        /// Frames whose motion-to-photon latency exceeded the budget.
        deadline_misses: u64,
    },
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` for JSON: finite values via `{}` (shortest round-trip
/// form, deterministic), non-finite values as `null`.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

impl Event {
    /// Renders the event as a single-line JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Event::SessionStart { label, budget_ms } => format!(
                "{{\"event\":\"session_start\",\"label\":\"{}\",\"budget_ms\":{}}}",
                json_escape(label),
                json_f64(*budget_ms)
            ),
            Event::FrameStart { frame } => {
                format!("{{\"event\":\"frame_start\",\"frame\":{frame}}}")
            }
            Event::Span { frame, stage, start_ms, end_ms } => format!(
                "{{\"event\":\"span\",\"frame\":{},\"stage\":\"{}\",\"start_ms\":{},\"end_ms\":{}}}",
                frame,
                stage.label(),
                json_f64(*start_ms),
                json_f64(*end_ms)
            ),
            Event::Count { frame, counter, delta } => format!(
                "{{\"event\":\"count\",\"frame\":{},\"counter\":\"{}\",\"delta\":{}}}",
                frame,
                counter.label(),
                delta
            ),
            Event::Gauge { frame, gauge, value } => format!(
                "{{\"event\":\"gauge\",\"frame\":{},\"gauge\":\"{}\",\"value\":{}}}",
                frame,
                gauge.label(),
                json_f64(*value)
            ),
            Event::Instant { frame, kind, ts_ms, detail } => format!(
                "{{\"event\":\"instant\",\"frame\":{},\"kind\":\"{}\",\"ts_ms\":{},\"detail\":\"{}\"}}",
                frame,
                kind.label(),
                json_f64(*ts_ms),
                json_escape(detail)
            ),
            Event::FrameEnd { frame, mtp_ms, bytes, deadline_met } => format!(
                "{{\"event\":\"frame_end\",\"frame\":{},\"mtp_ms\":{},\"bytes\":{},\"deadline_met\":{}}}",
                frame,
                json_f64(*mtp_ms),
                bytes,
                deadline_met
            ),
            Event::Log { level, message } => format!(
                "{{\"event\":\"log\",\"level\":\"{}\",\"message\":\"{}\"}}",
                level.label(),
                json_escape(message)
            ),
            Event::SessionEnd { label, frames, deadline_misses } => format!(
                "{{\"event\":\"session_end\",\"label\":\"{}\",\"frames\":{},\"deadline_misses\":{}}}",
                json_escape(label),
                frames,
                deadline_misses
            ),
        }
    }
}

/// Receives the event stream of one or more recorders.
pub trait Sink: Send {
    /// Handles one event. Implementations should be cheap; the recorder
    /// calls this synchronously on the simulated hot path.
    fn emit(&mut self, event: &Event);

    /// Flushes any buffered output. Called at session end.
    fn flush(&mut self) {}
}

/// A sink that discards every event. Useful to exercise the emission path
/// itself (e.g. in benchmarks) without any storage cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&mut self, _event: &Event) {}
}

/// A sink that appends every event to a shared in-memory buffer. Cloning
/// shares the buffer, so tests can keep one clone and hand the other to a
/// [`SinkHandle`].
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// A sink with an empty buffer.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A snapshot of all events captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether no events were captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn emit(&mut self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// A sink that writes each event as one JSON object per line (JSON Lines).
///
/// Events accumulate in a [`BufWriter`], so a long resilience soak pays one
/// syscall per buffer, not one per event. Whole lines enter the buffer
/// atomically and the sink flushes on [`Drop`], so a run that ends without
/// an explicit [`Sink::flush`] (early return, panic unwinding) still leaves
/// a valid JSONL file of complete lines on disk.
///
/// Every line carries a leading monotonic `"seq"` field, so several
/// sessions' JSONL streams can be merged (and a merge re-split) by sorting
/// on `(file, seq)` without any trace post-processing.
#[derive(Debug)]
pub struct JsonlSink {
    writer: BufWriter<File>,
    seq: u64,
}

impl JsonlSink {
    /// Creates (or truncates) `path` and writes events to it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: BufWriter::new(file),
            seq: 0,
        })
    }
}

impl Sink for JsonlSink {
    fn emit(&mut self, event: &Event) {
        // Every Event::to_json() starts with `{"event":…`, so the sequence
        // number splices in as the first field without re-serializing.
        // Serialization is infallible; a full disk surfaces via flush.
        let json = event.to_json();
        debug_assert!(json.starts_with('{'));
        let _ = writeln!(self.writer, "{{\"seq\":{},{}", self.seq, &json[1..]);
        self.seq += 1;
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        // Last-chance flush so truncated runs keep every completed line;
        // errors are unreportable here (the happy path flushed already).
        let _ = self.writer.flush();
    }
}

/// A sink that fans every event out to several downstream sinks — e.g. a
/// JSONL file *and* a trace collector fed by the same session.
pub struct MultiSink {
    sinks: Vec<SinkHandle>,
}

impl MultiSink {
    /// A fan-out over `sinks`, in emission order.
    pub fn new(sinks: Vec<SinkHandle>) -> Self {
        MultiSink { sinks }
    }
}

impl Sink for MultiSink {
    fn emit(&mut self, event: &Event) {
        for sink in &self.sinks {
            sink.emit(event);
        }
    }

    fn flush(&mut self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// Shared, cloneable handle to a sink. This is what flows through
/// configuration structs (`SessionConfig`, `RunOptions`): cloning the handle
/// shares the underlying sink.
#[derive(Clone)]
pub struct SinkHandle {
    inner: Arc<Mutex<dyn Sink>>,
}

impl SinkHandle {
    /// Wraps a sink in a shareable handle.
    pub fn new(sink: impl Sink + 'static) -> Self {
        SinkHandle {
            inner: Arc::new(Mutex::new(sink)),
        }
    }

    /// A handle to a [`NullSink`].
    pub fn null() -> Self {
        SinkHandle::new(NullSink)
    }

    /// A handle to a [`MultiSink`] fanning events out to `sinks`, in
    /// emission order — the one-call form of the common "file *and* trace
    /// collector off the same session" wiring.
    pub fn fanout(sinks: Vec<SinkHandle>) -> Self {
        SinkHandle::new(MultiSink::new(sinks))
    }

    /// Forwards one event to the sink.
    pub fn emit(&self, event: &Event) {
        self.inner
            .lock()
            .expect("telemetry sink poisoned")
            .emit(event);
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        self.inner.lock().expect("telemetry sink poisoned").flush();
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SinkHandle(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_clones_share_the_buffer() {
        let mem = MemorySink::new();
        let handle = SinkHandle::new(mem.clone());
        handle.emit(&Event::FrameStart { frame: 3 });
        handle.emit(&Event::FrameEnd {
            frame: 3,
            mtp_ms: 12.5,
            bytes: 900,
            deadline_met: true,
        });
        assert_eq!(mem.len(), 2);
        assert_eq!(mem.events()[0], Event::FrameStart { frame: 3 });
    }

    #[test]
    fn events_serialize_to_single_json_lines() {
        let e = Event::Span {
            frame: 7,
            stage: Stage::NpuSr,
            start_ms: 1.5,
            end_ms: 4.25,
        };
        let json = e.to_json();
        assert_eq!(
            json,
            "{\"event\":\"span\",\"frame\":7,\"stage\":\"npu-sr\",\"start_ms\":1.5,\"end_ms\":4.25}"
        );
        assert!(!json.contains('\n'));
    }

    #[test]
    fn log_messages_are_escaped() {
        let e = Event::Log {
            level: Level::Error,
            message: "bad \"id\"\nline2\ttab \\ slash".to_owned(),
        };
        let json = e.to_json();
        assert!(
            json.contains("bad \\\"id\\\"\\nline2\\ttab \\\\ slash"),
            "{json}"
        );
        assert!(!json.contains('\n'));
    }

    #[test]
    fn control_characters_use_unicode_escapes() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::Gauge {
            frame: 0,
            gauge: Gauge::RoiAreaPx,
            value: f64::NAN,
        };
        assert!(e.to_json().contains("\"value\":null"));
    }

    #[test]
    fn instants_serialize_with_kind_and_detail() {
        let e = Event::Instant {
            frame: 12,
            kind: InstantKind::LadderShift,
            ts_ms: 200.5,
            detail: "rung 0 -> 2".to_owned(),
        };
        assert_eq!(
            e.to_json(),
            "{\"event\":\"instant\",\"frame\":12,\"kind\":\"ladder-shift\",\"ts_ms\":200.5,\"detail\":\"rung 0 -> 2\"}"
        );
        let labels: std::collections::HashSet<&str> = [
            InstantKind::DeadlineMiss,
            InstantKind::Drop,
            InstantKind::LadderShift,
            InstantKind::Nack,
            InstantKind::Fault,
            InstantKind::SloBreach,
            InstantKind::Recovery,
            InstantKind::Anomaly,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        assert_eq!(labels.len(), 8, "instant labels must be unique");
    }

    #[test]
    fn fanout_handle_is_equivalent_to_an_explicit_multi_sink() {
        let a = MemorySink::new();
        let b = MemorySink::new();
        let fan = SinkHandle::fanout(vec![SinkHandle::new(a.clone()), SinkHandle::new(b.clone())]);
        fan.emit(&Event::FrameStart { frame: 7 });
        fan.flush();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn multi_sink_fans_out_to_every_branch() {
        let a = MemorySink::new();
        let b = MemorySink::new();
        let multi = SinkHandle::new(MultiSink::new(vec![
            SinkHandle::new(a.clone()),
            SinkHandle::new(b.clone()),
        ]));
        multi.emit(&Event::FrameStart { frame: 1 });
        multi.flush();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn jsonl_sink_flushes_on_drop_without_explicit_flush() {
        let path = std::env::temp_dir().join("gss_telemetry_sink_drop_test.jsonl");
        {
            let mut sink = JsonlSink::create(&path).expect("create jsonl");
            for frame in 0..100 {
                sink.emit(&Event::FrameStart { frame });
            }
            // no flush: Drop must push the buffered lines out
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 100);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("gss_telemetry_sink_test.jsonl");
        {
            let mut sink = JsonlSink::create(&path).expect("create jsonl");
            sink.emit(&Event::SessionStart {
                label: "test".into(),
                budget_ms: 16.67,
            });
            sink.emit(&Event::FrameStart { frame: 0 });
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":0,\"event\":\"session_start\""));
        assert!(lines[1].starts_with("{\"seq\":1,\"event\":\"frame_start\""));
        let _ = std::fs::remove_file(&path);
    }
}
