//! Aggregate session summaries: the durable output of a recorder.
//!
//! [`TelemetrySummary`] is what rides on `SessionReport`: per-stage latency
//! distributions, the whole-frame motion-to-photon distribution, per-frame
//! wire bytes, counters and gauges, and deadline-miss accounting. It
//! renders either as a human-readable table ([`TelemetrySummary::table`])
//! or as deterministic JSON ([`TelemetrySummary::to_json`]) — two runs with
//! identical inputs produce byte-identical JSON, which the test-suite
//! relies on.

use std::fmt::Write as _;

use crate::hist::DistSummary;
use crate::sink::{json_escape, json_f64};
use crate::{Counter, Gauge, GaugeStat, Stage};

/// Latency distribution of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct StageSummary {
    /// Which stage.
    pub stage: Stage,
    /// Its per-frame duration distribution, in milliseconds.
    pub dist: DistSummary,
}

/// Final value of one counter.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct CounterSummary {
    /// Which counter.
    pub counter: Counter,
    /// Its value at session end.
    pub value: u64,
}

/// Aggregated observations of one gauge.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct GaugeSummary {
    /// Which gauge.
    pub gauge: Gauge,
    /// last/min/max/mean statistics over its observations.
    pub stats: GaugeStat,
}

/// Aggregate telemetry for one session.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TelemetrySummary {
    /// Session label (e.g. `"ours @ S8 Tab (wifi)"`).
    pub label: String,
    /// Frames completed.
    pub frames: u64,
    /// Per-frame deadline budget, in milliseconds.
    pub budget_ms: f64,
    /// Frames whose motion-to-photon latency exceeded the budget.
    pub deadline_misses: u64,
    /// Per-stage latency distributions, in [`Stage::ALL`] order; stages
    /// that never recorded a sample are omitted.
    pub stages: Vec<StageSummary>,
    /// Whole-frame motion-to-photon latency distribution.
    pub mtp_ms: Option<DistSummary>,
    /// Per-frame wire-byte distribution.
    pub frame_bytes: Option<DistSummary>,
    /// Non-zero counters, in [`Counter::ALL`] order.
    pub counters: Vec<CounterSummary>,
    /// Observed gauges, in [`Gauge::ALL`] order.
    pub gauges: Vec<GaugeSummary>,
}

/// An empty-session placeholder used where a report field is mandatory but
/// telemetry was not enabled.
impl Default for TelemetrySummary {
    fn default() -> Self {
        TelemetrySummary {
            label: String::new(),
            frames: 0,
            budget_ms: 0.0,
            deadline_misses: 0,
            stages: Vec::new(),
            mtp_ms: None,
            frame_bytes: None,
            counters: Vec::new(),
            gauges: Vec::new(),
        }
    }
}

pub(crate) fn dist_json(d: &DistSummary) -> String {
    format!(
        "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{},\"below_range\":{},\"above_range\":{},\"rejected\":{}}}",
        d.count,
        json_f64(d.min),
        json_f64(d.max),
        json_f64(d.mean),
        json_f64(d.p50),
        json_f64(d.p90),
        json_f64(d.p95),
        json_f64(d.p99),
        d.below_range,
        d.above_range,
        d.rejected
    )
}

impl TelemetrySummary {
    /// The summary for `stage`, if it recorded any samples.
    pub fn stage(&self, stage: Stage) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// The final value of `counter` (0 when never incremented).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|c| c.counter == counter)
            .map_or(0, |c| c.value)
    }

    /// The statistics of `gauge`, if it was ever observed.
    pub fn gauge(&self, gauge: Gauge) -> Option<GaugeStat> {
        self.gauges
            .iter()
            .find(|g| g.gauge == gauge)
            .map(|g| g.stats)
    }

    /// Fraction of frames that missed the deadline, in `[0, 1]`.
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.frames as f64
        }
    }

    /// Renders the summary as deterministic single-line JSON: identical
    /// session inputs produce byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"frames\":{},\"budget_ms\":{},\"deadline_misses\":{}",
            json_escape(&self.label),
            self.frames,
            json_f64(self.budget_ms),
            self.deadline_misses
        );
        out.push_str(",\"stages\":{");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", s.stage.label(), dist_json(&s.dist));
        }
        out.push('}');
        match &self.mtp_ms {
            Some(d) => {
                let _ = write!(out, ",\"mtp_ms\":{}", dist_json(d));
            }
            None => out.push_str(",\"mtp_ms\":null"),
        }
        match &self.frame_bytes {
            Some(d) => {
                let _ = write!(out, ",\"frame_bytes\":{}", dist_json(d));
            }
            None => out.push_str(",\"frame_bytes\":null"),
        }
        out.push_str(",\"counters\":{");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", c.counter.label(), c.value);
        }
        out.push('}');
        out.push_str(",\"gauges\":{");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mean = match g.stats.mean() {
                Some(m) => json_f64(m),
                None => "null".to_owned(),
            };
            let _ = write!(
                out,
                "\"{}\":{{\"last\":{},\"min\":{},\"max\":{},\"mean\":{},\"count\":{}}}",
                g.gauge.label(),
                json_f64(g.stats.last),
                json_f64(g.stats.min),
                json_f64(g.stats.max),
                mean,
                g.stats.count
            );
        }
        out.push_str("}}");
        out
    }

    /// Renders the summary as a human-readable aligned table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry: {}  frames {}  budget {:.2} ms  misses {} ({:.1}%)",
            if self.label.is_empty() {
                "(unlabelled)"
            } else {
                &self.label
            },
            self.frames,
            self.budget_ms,
            self.deadline_misses,
            self.deadline_miss_rate() * 100.0
        );
        let _ = writeln!(
            out,
            "  {:<14} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11}",
            "stage", "count", "p50", "p90", "p95", "p99", "max", "under/over"
        );
        let mut row = |name: &str, d: &DistSummary| {
            let overflow = if d.below_range == 0 && d.above_range == 0 && d.rejected == 0 {
                "-".to_owned()
            } else if d.rejected == 0 {
                format!("{}/{}", d.below_range, d.above_range)
            } else {
                format!("{}/{} !{}", d.below_range, d.above_range, d.rejected)
            };
            let _ = writeln!(
                out,
                "  {:<14} {:>7} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>11}",
                name, d.count, d.p50, d.p90, d.p95, d.p99, d.max, overflow
            );
        };
        for s in &self.stages {
            row(s.stage.label(), &s.dist);
        }
        if let Some(d) = &self.mtp_ms {
            row("mtp (ms)", d);
        }
        if let Some(d) = &self.frame_bytes {
            row("frame bytes", d);
        }
        if !self.counters.is_empty() {
            let parts: Vec<String> = self
                .counters
                .iter()
                .map(|c| format!("{} {}", c.counter.label(), c.value))
                .collect();
            let _ = writeln!(out, "  counters: {}", parts.join(", "));
        }
        if !self.gauges.is_empty() {
            let parts: Vec<String> = self
                .gauges
                .iter()
                .map(|g| {
                    let mean = match g.stats.mean() {
                        Some(m) => format!("{m:.1}"),
                        None => "—".to_owned(),
                    };
                    format!("{} last {:.1} mean {}", g.gauge.label(), g.stats.last, mean)
                })
                .collect();
            let _ = writeln!(out, "  gauges: {}", parts.join(", "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> TelemetrySummary {
        let dist = DistSummary {
            count: 4,
            min: 1.0,
            max: 4.0,
            mean: 2.5,
            p50: 2.0,
            p90: 4.0,
            p95: 4.0,
            p99: 4.0,
            below_range: 0,
            above_range: 1,
            rejected: 0,
        };
        TelemetrySummary {
            label: "ours @ test".to_owned(),
            frames: 4,
            budget_ms: 16.67,
            deadline_misses: 1,
            stages: vec![StageSummary {
                stage: Stage::Render,
                dist,
            }],
            mtp_ms: Some(dist),
            frame_bytes: Some(dist),
            counters: vec![CounterSummary {
                counter: Counter::FramesEncoded,
                value: 4,
            }],
            gauges: vec![GaugeSummary {
                gauge: Gauge::RoiAreaPx,
                stats: GaugeStat {
                    last: 2.0,
                    min: 1.0,
                    max: 2.0,
                    sum: 3.0,
                    count: 2,
                },
            }],
        }
    }

    #[test]
    fn accessors_find_entries() {
        let s = sample_summary();
        assert!(s.stage(Stage::Render).is_some());
        assert!(s.stage(Stage::Decode).is_none());
        assert_eq!(s.counter(Counter::FramesEncoded), 4);
        assert_eq!(s.counter(Counter::Nacks), 0);
        assert_eq!(s.gauge(Gauge::RoiAreaPx).unwrap().count, 2);
        assert_eq!(s.deadline_miss_rate(), 0.25);
    }

    #[test]
    fn json_is_single_line_and_contains_all_sections() {
        let json = sample_summary().to_json();
        assert!(!json.contains('\n'));
        for key in [
            "\"label\":",
            "\"stages\":",
            "\"mtp_ms\":",
            "\"frame_bytes\":",
            "\"counters\":",
            "\"gauges\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"render\":{\"count\":4"));
    }

    #[test]
    fn json_is_deterministic() {
        assert_eq!(sample_summary().to_json(), sample_summary().to_json());
    }

    #[test]
    fn table_lists_stages_and_counters() {
        let table = sample_summary().table();
        assert!(table.contains("render"));
        assert!(table.contains("mtp (ms)"));
        assert!(table.contains("frames-encoded 4"));
        assert!(table.contains("misses 1 (25.0%)"));
        // overflow column: header plus the sample's one above-range clamp
        assert!(table.contains("under/over"));
        assert!(table.contains("0/1"));
    }

    #[test]
    fn json_carries_overflow_and_rejection_counts() {
        let json = sample_summary().to_json();
        assert!(json.contains("\"below_range\":0"));
        assert!(json.contains("\"above_range\":1"));
        assert!(json.contains("\"rejected\":0"));
    }

    #[test]
    fn empty_gauge_renders_null_and_em_dash() {
        let mut s = sample_summary();
        s.gauges[0].stats = GaugeStat::default();
        assert!(
            s.to_json().contains("\"mean\":null"),
            "empty gauge mean must serialize as null, not 0"
        );
        assert!(
            s.table().contains("mean —"),
            "empty gauge mean must render as an em dash"
        );
    }

    #[test]
    fn default_summary_is_empty() {
        let s = TelemetrySummary::default();
        assert_eq!(s.frames, 0);
        assert_eq!(s.deadline_miss_rate(), 0.0);
        assert!(s.to_json().contains("\"mtp_ms\":null"));
    }
}
