//! Prometheus text-format snapshot exporter.
//!
//! Renders one or more sessions' telemetry summaries — optionally with
//! their attribution and SLO verdicts — in the Prometheus exposition
//! format (text/plain version 0.0.4), so standard scrape-file tooling and
//! dashboards can ingest a simulated run. This is a *snapshot* exporter:
//! the simulator has no live endpoint, so the intended flow is writing
//! the rendering to a file (e.g. for the node-exporter textfile
//! collector, or offline promtool analysis).
//!
//! Every family is emitted in a fixed order with samples sorted by the
//! enum declaration orders, and all numbers come from modeled state, so
//! the output is byte-identical across reruns and worker counts.

use crate::attribution::SessionAttribution;
use crate::hist::Exemplar;
use crate::sampling::SessionExemplars;
use crate::sink::json_f64;
use crate::slo::SloSummary;
use crate::summary::TelemetrySummary;
use crate::timeseries::SeriesSet;
use crate::{Counter, Gauge};
use std::fmt::Write as _;

/// One session's exportable state.
#[derive(Debug, Clone, Copy)]
pub struct PromSession<'a> {
    /// Value of the `session` label on every sample (keep it short and
    /// stable; the full telemetry label is too noisy for a label value).
    pub name: &'a str,
    /// Aggregated telemetry.
    pub summary: &'a TelemetrySummary,
    /// Deadline-miss attribution, when computed.
    pub attribution: Option<&'a SessionAttribution>,
    /// SLO standings, when computed.
    pub slo: Option<&'a SloSummary>,
    /// Trace-linked exemplars over the session's retained trace, when a
    /// sampling sink collected them (see [`crate::compute_exemplars`]).
    /// Only rendered when [`PromOptions::exemplars`] is on.
    pub exemplars: Option<&'a SessionExemplars>,
}

/// Rendering options for [`render_opts`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PromOptions {
    /// Append OpenMetrics-style `# {trace_id="…"} value` exemplar
    /// annotations to p99 latency and worst-case gauge lines. Off by
    /// default: the annotation is an OpenMetrics extension that plain
    /// Prometheus text-format parsers treat as a syntax error.
    pub exemplars: bool,
}

/// Escapes a Prometheus label value. The exposition format requires `\\`,
/// `\"` and `\n` escapes inside quoted label values — a raw newline would
/// split the sample line and corrupt the whole exposition.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats a sample value: finite floats via the shared deterministic
/// float formatting, non-finite as `NaN` (which Prometheus accepts).
fn value(v: f64) -> String {
    if v.is_finite() {
        json_f64(v)
    } else {
        "NaN".to_owned()
    }
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Formats the OpenMetrics exemplar suffix appended to an annotated sample
/// line: `` # {trace_id="0x…"} value``. [`parse_exemplar`] inverts this
/// byte-exactly.
pub fn format_exemplar(e: Exemplar) -> String {
    format!(" # {{trace_id=\"0x{:x}\"}} {}", e.trace_id, value(e.value))
}

/// Parses an exemplar annotation off a sample line, returning the trace id
/// and exemplar value when the line carries one. Round-trips with
/// [`format_exemplar`]: re-formatting the parse reproduces the suffix.
pub fn parse_exemplar(line: &str) -> Option<Exemplar> {
    let (_, suffix) = line.split_once(" # {trace_id=\"0x")?;
    let (hex, rest) = suffix.split_once('"')?;
    let trace_id = u64::from_str_radix(hex, 16).ok()?;
    let value: f64 = rest.strip_prefix("} ")?.parse().ok()?;
    Some(Exemplar { trace_id, value })
}

/// Renders the sessions as one Prometheus text exposition with default
/// options (no exemplar annotations — plain-parser safe).
pub fn render(sessions: &[PromSession<'_>]) -> String {
    render_opts(sessions, PromOptions::default())
}

/// [`render`] with explicit [`PromOptions`]. With exemplars enabled, p99
/// stage-latency lines and worst-case (`stat="max"`) gauge lines gain a
/// `# {trace_id="…"}` suffix linking into the retained Chrome trace.
pub fn render_opts(sessions: &[PromSession<'_>], opts: PromOptions) -> String {
    let mut out = String::new();

    family(
        &mut out,
        "gss_frames_total",
        "counter",
        "Frames completed by the session.",
    );
    for s in sessions {
        let _ = writeln!(
            out,
            "gss_frames_total{{session=\"{}\"}} {}",
            escape_label(s.name),
            s.summary.frames
        );
    }

    family(
        &mut out,
        "gss_deadline_misses_total",
        "counter",
        "Frames whose upscaling critical path exceeded the real-time budget.",
    );
    for s in sessions {
        let _ = writeln!(
            out,
            "gss_deadline_misses_total{{session=\"{}\"}} {}",
            escape_label(s.name),
            s.summary.deadline_misses
        );
    }

    family(
        &mut out,
        "gss_counter_total",
        "counter",
        "Monotonic telemetry counters, keyed by counter label.",
    );
    for s in sessions {
        for c in Counter::ALL {
            let _ = writeln!(
                out,
                "gss_counter_total{{session=\"{}\",counter=\"{}\"}} {}",
                escape_label(s.name),
                c.label(),
                s.summary.counter(c)
            );
        }
    }

    family(
        &mut out,
        "gss_gauge",
        "gauge",
        "Sampled telemetry gauges (last/min/max/mean over the session).",
    );
    for s in sessions {
        for g in Gauge::ALL {
            if let Some(stats) = s.summary.gauge(g) {
                if stats.count == 0 {
                    continue;
                }
                let mean = stats.mean().unwrap_or(f64::NAN);
                for (stat, v) in [
                    ("last", stats.last),
                    ("min", stats.min),
                    ("max", stats.max),
                    ("mean", mean),
                ] {
                    // The worst-frame exemplar annotates the worst-case
                    // (max) line: that is the sample it identifies.
                    let exemplar = if opts.exemplars && stat == "max" {
                        s.exemplars
                            .and_then(|e| e.worst_frame)
                            .map(format_exemplar)
                            .unwrap_or_default()
                    } else {
                        String::new()
                    };
                    let _ = writeln!(
                        out,
                        "gss_gauge{{session=\"{}\",gauge=\"{}\",stat=\"{stat}\"}} {}{exemplar}",
                        escape_label(s.name),
                        g.label(),
                        value(v)
                    );
                }
            }
        }
    }

    family(
        &mut out,
        "gss_stage_latency_ms",
        "gauge",
        "Per-stage latency distribution quantiles, modeled ms.",
    );
    for s in sessions {
        for st in &s.summary.stages {
            for (q, v) in [
                ("0.5", st.dist.p50),
                ("0.9", st.dist.p90),
                ("0.95", st.dist.p95),
                ("0.99", st.dist.p99),
            ] {
                // The per-stage exemplar is the worst retained sample,
                // which lives in the p99 bucket — see `hist::Exemplar`.
                let exemplar = if opts.exemplars && q == "0.99" {
                    s.exemplars
                        .and_then(|e| e.stage(st.stage))
                        .map(format_exemplar)
                        .unwrap_or_default()
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "gss_stage_latency_ms{{session=\"{}\",stage=\"{}\",quantile=\"{q}\"}} {}{exemplar}",
                    escape_label(s.name),
                    st.stage.label(),
                    value(v)
                );
            }
        }
    }
    family(
        &mut out,
        "gss_stage_latency_samples_total",
        "counter",
        "Samples behind each stage latency distribution.",
    );
    for s in sessions {
        for st in &s.summary.stages {
            let _ = writeln!(
                out,
                "gss_stage_latency_samples_total{{session=\"{}\",stage=\"{}\"}} {}",
                escape_label(s.name),
                st.stage.label(),
                st.dist.count
            );
        }
    }

    family(
        &mut out,
        "gss_miss_cause_total",
        "counter",
        "Deadline misses attributed to each root cause.",
    );
    for s in sessions {
        if let Some(a) = s.attribution {
            for b in &a.blame {
                let _ = writeln!(
                    out,
                    "gss_miss_cause_total{{session=\"{}\",cause=\"{}\"}} {}",
                    escape_label(s.name),
                    b.cause.label(),
                    b.misses
                );
            }
        }
    }
    family(
        &mut out,
        "gss_miss_overrun_ms_total",
        "counter",
        "Total budget overrun attributed to each root cause, modeled ms.",
    );
    for s in sessions {
        if let Some(a) = s.attribution {
            for b in &a.blame {
                let _ = writeln!(
                    out,
                    "gss_miss_overrun_ms_total{{session=\"{}\",cause=\"{}\"}} {}",
                    escape_label(s.name),
                    b.cause.label(),
                    value(b.total_overrun_ms)
                );
            }
        }
    }
    family(
        &mut out,
        "gss_miss_attributed_fraction",
        "gauge",
        "Fraction of deadline misses assigned a non-unknown cause.",
    );
    for s in sessions {
        if let Some(a) = s.attribution {
            let _ = writeln!(
                out,
                "gss_miss_attributed_fraction{{session=\"{}\"}} {}",
                escape_label(s.name),
                value(a.attributed_fraction())
            );
        }
    }

    family(
        &mut out,
        "gss_slo_breaches_total",
        "counter",
        "Times each objective entered breach.",
    );
    for s in sessions {
        if let Some(slo) = s.slo {
            for o in &slo.objectives {
                let _ = writeln!(
                    out,
                    "gss_slo_breaches_total{{session=\"{}\",slo=\"{}\"}} {}",
                    escape_label(s.name),
                    escape_label(&o.name),
                    o.breaches
                );
            }
        }
    }
    family(
        &mut out,
        "gss_slo_burn_rate_max",
        "gauge",
        "Worst burn rate each objective saw, by window.",
    );
    for s in sessions {
        if let Some(slo) = s.slo {
            for o in &slo.objectives {
                for (window, v) in [("fast", o.max_fast_burn), ("slow", o.max_slow_burn)] {
                    let _ = writeln!(
                        out,
                        "gss_slo_burn_rate_max{{session=\"{}\",slo=\"{}\",window=\"{window}\"}} {}",
                        escape_label(s.name),
                        escape_label(&o.name),
                        value(v)
                    );
                }
            }
        }
    }
    family(
        &mut out,
        "gss_slo_breached",
        "gauge",
        "Whether each objective was in breach at session end (0/1).",
    );
    for s in sessions {
        if let Some(slo) = s.slo {
            for o in &slo.objectives {
                let _ = writeln!(
                    out,
                    "gss_slo_breached{{session=\"{}\",slo=\"{}\"}} {}",
                    escape_label(s.name),
                    escape_label(&o.name),
                    u8::from(o.breached)
                );
            }
        }
    }

    out
}

/// Fleet-level exportable state: the per-tick series set plus the anomaly
/// and knee verdicts the fleet loop derived from it.
#[derive(Debug, Clone, Copy)]
pub struct PromFleet<'a> {
    /// Value of the `fleet` label on every sample.
    pub name: &'a str,
    /// Fleet time series (active sessions, fairness, latency, …).
    pub series: &'a SeriesSet,
    /// `(detector label, episode count)` pairs, in a fixed caller order.
    pub anomalies: &'a [(&'a str, u64)],
    /// First tick where fairness or the latency budget gave way, if any.
    pub knee_tick: Option<u64>,
}

/// Renders a fleet snapshot as a Prometheus text exposition: per-series
/// `min`/`max`/`last` summary gauges with sample counts, anomaly episode
/// counters, and the knee tick (−1 when the run never kneeled). Same
/// determinism contract as [`render`]: fixed family order, insertion-order
/// series, modeled values only.
pub fn render_fleet(fleet: &PromFleet<'_>) -> String {
    let mut out = String::new();
    let name = escape_label(fleet.name);

    family(
        &mut out,
        "gss_fleet_series",
        "gauge",
        "Fleet time-series summary statistics (min/max/last over the run).",
    );
    for s in fleet.series.iter() {
        for (stat, v) in [
            ("min", s.min().unwrap_or(f64::NAN)),
            ("max", s.max().unwrap_or(f64::NAN)),
            ("last", s.last().unwrap_or(f64::NAN)),
        ] {
            let _ = writeln!(
                out,
                "gss_fleet_series{{fleet=\"{name}\",series=\"{}\",stat=\"{stat}\"}} {}",
                escape_label(s.name()),
                value(v)
            );
        }
    }
    family(
        &mut out,
        "gss_fleet_series_samples_total",
        "counter",
        "Per-tick samples folded into each fleet series.",
    );
    for s in fleet.series.iter() {
        let _ = writeln!(
            out,
            "gss_fleet_series_samples_total{{fleet=\"{name}\",series=\"{}\"}} {}",
            escape_label(s.name()),
            s.samples()
        );
    }
    family(
        &mut out,
        "gss_fleet_anomalies_total",
        "counter",
        "Streaming anomaly-detector episodes, by detector kind.",
    );
    for (kind, count) in fleet.anomalies {
        let _ = writeln!(
            out,
            "gss_fleet_anomalies_total{{fleet=\"{name}\",kind=\"{}\"}} {count}",
            escape_label(kind)
        );
    }
    family(
        &mut out,
        "gss_fleet_knee_tick",
        "gauge",
        "First tick where fairness < 0.9 or fleet p99 missed budget (-1: never).",
    );
    let knee = fleet.knee_tick.map_or(-1.0, |t| t as f64);
    let _ = writeln!(
        out,
        "gss_fleet_knee_tick{{fleet=\"{name}\"}} {}",
        value(knee)
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, Stage};

    fn summary() -> TelemetrySummary {
        let mut rec = Recorder::new("test".to_owned(), crate::REALTIME_BUDGET_MS);
        for i in 0..4u64 {
            rec.begin_frame(i);
            rec.record_span(Stage::NpuSr, i as f64 * 16.67, 4.0);
            rec.gauge(Gauge::LadderRung, 1.0);
            rec.incr(Counter::FramesEncoded);
            rec.end_frame(12.0, 4.0, 1000).unwrap();
        }
        rec.finish()
    }

    #[test]
    fn renders_a_parseable_snapshot() {
        let s = summary();
        let text = render(&[PromSession {
            name: "controller",
            summary: &s,
            attribution: None,
            slo: None,
            exemplars: None,
        }]);
        assert!(text.contains("gss_frames_total{session=\"controller\"} 4"));
        assert!(text.contains("# TYPE gss_counter_total counter"));
        assert!(
            text.contains("gss_counter_total{session=\"controller\",counter=\"frames-encoded\"} 4")
        );
        assert!(text.contains(
            "gss_stage_latency_ms{session=\"controller\",stage=\"npu-sr\",quantile=\"0.99\"}"
        ));
        // every non-comment line is `name{labels} value`
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (metric, v) = line.rsplit_once(' ').expect("sample has a value");
            assert!(metric.contains('{') && metric.ends_with('}'), "{line}");
            assert!(
                v == "NaN" || v.parse::<f64>().is_ok(),
                "value must parse: {line}"
            );
        }
    }

    #[test]
    fn rendering_is_deterministic_and_escapes_labels() {
        let s = summary();
        let sess = [PromSession {
            name: "a\"b\\c",
            summary: &s,
            attribution: None,
            slo: None,
            exemplars: None,
        }];
        let a = render(&sess);
        assert_eq!(a, render(&sess));
        assert!(a.contains("session=\"a\\\"b\\\\c\""));
    }

    /// Satellite regression: a raw newline in a label value would split the
    /// sample line and corrupt the exposition; it must render as `\n`.
    #[test]
    fn escape_label_escapes_newlines() {
        assert_eq!(escape_label("a\nb"), "a\\nb");
        assert_eq!(escape_label("x\\y\"z\n"), "x\\\\y\\\"z\\n");
        let s = summary();
        let sess = [PromSession {
            name: "line\nbreak",
            summary: &s,
            attribution: None,
            slo: None,
            exemplars: None,
        }];
        let text = render(&sess);
        assert!(text.contains("session=\"line\\nbreak\""));
        // every non-comment line still parses as `name{labels} value`
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (metric, v) = line.rsplit_once(' ').expect("sample has a value");
            assert!(metric.contains('{') && metric.ends_with('}'), "{line}");
            assert!(v == "NaN" || v.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn exemplar_annotations_render_behind_the_flag_and_round_trip() {
        let s = summary();
        let exemplars = SessionExemplars {
            label: "test".to_owned(),
            pid: 1,
            worst_frame: Some(Exemplar {
                trace_id: 1_000_003,
                value: 12.0,
            }),
            stages: vec![(
                Stage::NpuSr,
                Exemplar {
                    trace_id: 1_000_002,
                    value: 4.0,
                },
            )],
        };
        let sess = [PromSession {
            name: "controller",
            summary: &s,
            attribution: None,
            slo: None,
            exemplars: Some(&exemplars),
        }];
        // Flag off: byte-identical to a session without exemplars, so the
        // default stays plain-parser safe.
        let plain = render(&sess);
        assert!(!plain.contains("# {trace_id="));

        let annotated = render_opts(&sess, PromOptions { exemplars: true });
        let p99_line = annotated
            .lines()
            .find(|l| l.contains("stage=\"npu-sr\",quantile=\"0.99\""))
            .expect("p99 line present");
        let e = parse_exemplar(p99_line).expect("p99 line carries an exemplar");
        assert_eq!(e.trace_id, 1_000_002);
        assert_eq!(e.value, 4.0);
        // round trip: re-formatting the parse reproduces the suffix bytes
        assert!(p99_line.ends_with(&format_exemplar(e)), "{p99_line}");

        let max_line = annotated
            .lines()
            .find(|l| l.contains("gss_gauge{") && l.contains("stat=\"max\""))
            .expect("gauge max line present");
        let w = parse_exemplar(max_line).expect("gauge max line carries an exemplar");
        assert_eq!(w.trace_id, 1_000_003);
        assert!(max_line.ends_with(&format_exemplar(w)));

        // unannotated lines parse as no-exemplar
        assert_eq!(parse_exemplar("gss_frames_total{session=\"x\"} 4"), None);
        // quantiles below p99 stay clean even with the flag on
        for line in annotated.lines() {
            if line.contains("quantile=\"0.5\"") {
                assert_eq!(parse_exemplar(line), None, "{line}");
            }
        }
    }

    #[test]
    fn fleet_snapshot_renders_series_anomalies_and_knee() {
        let mut series = SeriesSet::new(16);
        for tick in 0..10u64 {
            series.push("active-sessions", tick, (tick % 4) as f64);
            series.push("fairness-jain", tick, 1.0 - tick as f64 * 0.02);
        }
        let fleet = PromFleet {
            name: "storm",
            series: &series,
            anomalies: &[("rung-flap", 2), ("starvation", 1), ("admission-storm", 1)],
            knee_tick: Some(7),
        };
        let text = render_fleet(&fleet);
        assert_eq!(text, render_fleet(&fleet), "snapshot must be deterministic");
        assert!(text.contains(
            "gss_fleet_series{fleet=\"storm\",series=\"active-sessions\",stat=\"max\"} 3"
        ));
        assert!(text.contains(
            "gss_fleet_series_samples_total{fleet=\"storm\",series=\"fairness-jain\"} 10"
        ));
        assert!(text.contains("gss_fleet_anomalies_total{fleet=\"storm\",kind=\"starvation\"} 1"));
        assert!(text.contains("gss_fleet_knee_tick{fleet=\"storm\"} 7"));
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (metric, v) = line.rsplit_once(' ').expect("sample has a value");
            assert!(metric.contains('{') && metric.ends_with('}'), "{line}");
            assert!(v == "NaN" || v.parse::<f64>().is_ok(), "{line}");
        }
        // a kneeless run exports the -1 sentinel
        let calm = PromFleet {
            knee_tick: None,
            ..fleet
        };
        assert!(render_fleet(&calm).contains("gss_fleet_knee_tick{fleet=\"storm\"} -1"));
    }
}
