//! Prometheus text-format snapshot exporter.
//!
//! Renders one or more sessions' telemetry summaries — optionally with
//! their attribution and SLO verdicts — in the Prometheus exposition
//! format (text/plain version 0.0.4), so standard scrape-file tooling and
//! dashboards can ingest a simulated run. This is a *snapshot* exporter:
//! the simulator has no live endpoint, so the intended flow is writing
//! the rendering to a file (e.g. for the node-exporter textfile
//! collector, or offline promtool analysis).
//!
//! Every family is emitted in a fixed order with samples sorted by the
//! enum declaration orders, and all numbers come from modeled state, so
//! the output is byte-identical across reruns and worker counts.

use crate::attribution::SessionAttribution;
use crate::sink::json_f64;
use crate::slo::SloSummary;
use crate::summary::TelemetrySummary;
use crate::timeseries::SeriesSet;
use crate::{Counter, Gauge};
use std::fmt::Write as _;

/// One session's exportable state.
#[derive(Debug, Clone, Copy)]
pub struct PromSession<'a> {
    /// Value of the `session` label on every sample (keep it short and
    /// stable; the full telemetry label is too noisy for a label value).
    pub name: &'a str,
    /// Aggregated telemetry.
    pub summary: &'a TelemetrySummary,
    /// Deadline-miss attribution, when computed.
    pub attribution: Option<&'a SessionAttribution>,
    /// SLO standings, when computed.
    pub slo: Option<&'a SloSummary>,
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats a sample value: finite floats via the shared deterministic
/// float formatting, non-finite as `NaN` (which Prometheus accepts).
fn value(v: f64) -> String {
    if v.is_finite() {
        json_f64(v)
    } else {
        "NaN".to_owned()
    }
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders the sessions as one Prometheus text exposition.
pub fn render(sessions: &[PromSession<'_>]) -> String {
    let mut out = String::new();

    family(
        &mut out,
        "gss_frames_total",
        "counter",
        "Frames completed by the session.",
    );
    for s in sessions {
        let _ = writeln!(
            out,
            "gss_frames_total{{session=\"{}\"}} {}",
            escape_label(s.name),
            s.summary.frames
        );
    }

    family(
        &mut out,
        "gss_deadline_misses_total",
        "counter",
        "Frames whose upscaling critical path exceeded the real-time budget.",
    );
    for s in sessions {
        let _ = writeln!(
            out,
            "gss_deadline_misses_total{{session=\"{}\"}} {}",
            escape_label(s.name),
            s.summary.deadline_misses
        );
    }

    family(
        &mut out,
        "gss_counter_total",
        "counter",
        "Monotonic telemetry counters, keyed by counter label.",
    );
    for s in sessions {
        for c in Counter::ALL {
            let _ = writeln!(
                out,
                "gss_counter_total{{session=\"{}\",counter=\"{}\"}} {}",
                escape_label(s.name),
                c.label(),
                s.summary.counter(c)
            );
        }
    }

    family(
        &mut out,
        "gss_gauge",
        "gauge",
        "Sampled telemetry gauges (last/min/max/mean over the session).",
    );
    for s in sessions {
        for g in Gauge::ALL {
            if let Some(stats) = s.summary.gauge(g) {
                if stats.count == 0 {
                    continue;
                }
                let mean = stats.mean().unwrap_or(f64::NAN);
                for (stat, v) in [
                    ("last", stats.last),
                    ("min", stats.min),
                    ("max", stats.max),
                    ("mean", mean),
                ] {
                    let _ = writeln!(
                        out,
                        "gss_gauge{{session=\"{}\",gauge=\"{}\",stat=\"{stat}\"}} {}",
                        escape_label(s.name),
                        g.label(),
                        value(v)
                    );
                }
            }
        }
    }

    family(
        &mut out,
        "gss_stage_latency_ms",
        "gauge",
        "Per-stage latency distribution quantiles, modeled ms.",
    );
    for s in sessions {
        for st in &s.summary.stages {
            for (q, v) in [
                ("0.5", st.dist.p50),
                ("0.9", st.dist.p90),
                ("0.95", st.dist.p95),
                ("0.99", st.dist.p99),
            ] {
                let _ = writeln!(
                    out,
                    "gss_stage_latency_ms{{session=\"{}\",stage=\"{}\",quantile=\"{q}\"}} {}",
                    escape_label(s.name),
                    st.stage.label(),
                    value(v)
                );
            }
        }
    }
    family(
        &mut out,
        "gss_stage_latency_samples_total",
        "counter",
        "Samples behind each stage latency distribution.",
    );
    for s in sessions {
        for st in &s.summary.stages {
            let _ = writeln!(
                out,
                "gss_stage_latency_samples_total{{session=\"{}\",stage=\"{}\"}} {}",
                escape_label(s.name),
                st.stage.label(),
                st.dist.count
            );
        }
    }

    family(
        &mut out,
        "gss_miss_cause_total",
        "counter",
        "Deadline misses attributed to each root cause.",
    );
    for s in sessions {
        if let Some(a) = s.attribution {
            for b in &a.blame {
                let _ = writeln!(
                    out,
                    "gss_miss_cause_total{{session=\"{}\",cause=\"{}\"}} {}",
                    escape_label(s.name),
                    b.cause.label(),
                    b.misses
                );
            }
        }
    }
    family(
        &mut out,
        "gss_miss_overrun_ms_total",
        "counter",
        "Total budget overrun attributed to each root cause, modeled ms.",
    );
    for s in sessions {
        if let Some(a) = s.attribution {
            for b in &a.blame {
                let _ = writeln!(
                    out,
                    "gss_miss_overrun_ms_total{{session=\"{}\",cause=\"{}\"}} {}",
                    escape_label(s.name),
                    b.cause.label(),
                    value(b.total_overrun_ms)
                );
            }
        }
    }
    family(
        &mut out,
        "gss_miss_attributed_fraction",
        "gauge",
        "Fraction of deadline misses assigned a non-unknown cause.",
    );
    for s in sessions {
        if let Some(a) = s.attribution {
            let _ = writeln!(
                out,
                "gss_miss_attributed_fraction{{session=\"{}\"}} {}",
                escape_label(s.name),
                value(a.attributed_fraction())
            );
        }
    }

    family(
        &mut out,
        "gss_slo_breaches_total",
        "counter",
        "Times each objective entered breach.",
    );
    for s in sessions {
        if let Some(slo) = s.slo {
            for o in &slo.objectives {
                let _ = writeln!(
                    out,
                    "gss_slo_breaches_total{{session=\"{}\",slo=\"{}\"}} {}",
                    escape_label(s.name),
                    escape_label(&o.name),
                    o.breaches
                );
            }
        }
    }
    family(
        &mut out,
        "gss_slo_burn_rate_max",
        "gauge",
        "Worst burn rate each objective saw, by window.",
    );
    for s in sessions {
        if let Some(slo) = s.slo {
            for o in &slo.objectives {
                for (window, v) in [("fast", o.max_fast_burn), ("slow", o.max_slow_burn)] {
                    let _ = writeln!(
                        out,
                        "gss_slo_burn_rate_max{{session=\"{}\",slo=\"{}\",window=\"{window}\"}} {}",
                        escape_label(s.name),
                        escape_label(&o.name),
                        value(v)
                    );
                }
            }
        }
    }
    family(
        &mut out,
        "gss_slo_breached",
        "gauge",
        "Whether each objective was in breach at session end (0/1).",
    );
    for s in sessions {
        if let Some(slo) = s.slo {
            for o in &slo.objectives {
                let _ = writeln!(
                    out,
                    "gss_slo_breached{{session=\"{}\",slo=\"{}\"}} {}",
                    escape_label(s.name),
                    escape_label(&o.name),
                    u8::from(o.breached)
                );
            }
        }
    }

    out
}

/// Fleet-level exportable state: the per-tick series set plus the anomaly
/// and knee verdicts the fleet loop derived from it.
#[derive(Debug, Clone, Copy)]
pub struct PromFleet<'a> {
    /// Value of the `fleet` label on every sample.
    pub name: &'a str,
    /// Fleet time series (active sessions, fairness, latency, …).
    pub series: &'a SeriesSet,
    /// `(detector label, episode count)` pairs, in a fixed caller order.
    pub anomalies: &'a [(&'a str, u64)],
    /// First tick where fairness or the latency budget gave way, if any.
    pub knee_tick: Option<u64>,
}

/// Renders a fleet snapshot as a Prometheus text exposition: per-series
/// `min`/`max`/`last` summary gauges with sample counts, anomaly episode
/// counters, and the knee tick (−1 when the run never kneeled). Same
/// determinism contract as [`render`]: fixed family order, insertion-order
/// series, modeled values only.
pub fn render_fleet(fleet: &PromFleet<'_>) -> String {
    let mut out = String::new();
    let name = escape_label(fleet.name);

    family(
        &mut out,
        "gss_fleet_series",
        "gauge",
        "Fleet time-series summary statistics (min/max/last over the run).",
    );
    for s in fleet.series.iter() {
        for (stat, v) in [
            ("min", s.min().unwrap_or(f64::NAN)),
            ("max", s.max().unwrap_or(f64::NAN)),
            ("last", s.last().unwrap_or(f64::NAN)),
        ] {
            let _ = writeln!(
                out,
                "gss_fleet_series{{fleet=\"{name}\",series=\"{}\",stat=\"{stat}\"}} {}",
                escape_label(s.name()),
                value(v)
            );
        }
    }
    family(
        &mut out,
        "gss_fleet_series_samples_total",
        "counter",
        "Per-tick samples folded into each fleet series.",
    );
    for s in fleet.series.iter() {
        let _ = writeln!(
            out,
            "gss_fleet_series_samples_total{{fleet=\"{name}\",series=\"{}\"}} {}",
            escape_label(s.name()),
            s.samples()
        );
    }
    family(
        &mut out,
        "gss_fleet_anomalies_total",
        "counter",
        "Streaming anomaly-detector episodes, by detector kind.",
    );
    for (kind, count) in fleet.anomalies {
        let _ = writeln!(
            out,
            "gss_fleet_anomalies_total{{fleet=\"{name}\",kind=\"{}\"}} {count}",
            escape_label(kind)
        );
    }
    family(
        &mut out,
        "gss_fleet_knee_tick",
        "gauge",
        "First tick where fairness < 0.9 or fleet p99 missed budget (-1: never).",
    );
    let knee = fleet.knee_tick.map_or(-1.0, |t| t as f64);
    let _ = writeln!(
        out,
        "gss_fleet_knee_tick{{fleet=\"{name}\"}} {}",
        value(knee)
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, Stage};

    fn summary() -> TelemetrySummary {
        let mut rec = Recorder::new("test".to_owned(), crate::REALTIME_BUDGET_MS);
        for i in 0..4u64 {
            rec.begin_frame(i);
            rec.record_span(Stage::NpuSr, i as f64 * 16.67, 4.0);
            rec.gauge(Gauge::LadderRung, 1.0);
            rec.incr(Counter::FramesEncoded);
            rec.end_frame(12.0, 4.0, 1000).unwrap();
        }
        rec.finish()
    }

    #[test]
    fn renders_a_parseable_snapshot() {
        let s = summary();
        let text = render(&[PromSession {
            name: "controller",
            summary: &s,
            attribution: None,
            slo: None,
        }]);
        assert!(text.contains("gss_frames_total{session=\"controller\"} 4"));
        assert!(text.contains("# TYPE gss_counter_total counter"));
        assert!(
            text.contains("gss_counter_total{session=\"controller\",counter=\"frames-encoded\"} 4")
        );
        assert!(text.contains(
            "gss_stage_latency_ms{session=\"controller\",stage=\"npu-sr\",quantile=\"0.99\"}"
        ));
        // every non-comment line is `name{labels} value`
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (metric, v) = line.rsplit_once(' ').expect("sample has a value");
            assert!(metric.contains('{') && metric.ends_with('}'), "{line}");
            assert!(
                v == "NaN" || v.parse::<f64>().is_ok(),
                "value must parse: {line}"
            );
        }
    }

    #[test]
    fn rendering_is_deterministic_and_escapes_labels() {
        let s = summary();
        let sess = [PromSession {
            name: "a\"b\\c",
            summary: &s,
            attribution: None,
            slo: None,
        }];
        let a = render(&sess);
        assert_eq!(a, render(&sess));
        assert!(a.contains("session=\"a\\\"b\\\\c\""));
    }

    #[test]
    fn fleet_snapshot_renders_series_anomalies_and_knee() {
        let mut series = SeriesSet::new(16);
        for tick in 0..10u64 {
            series.push("active-sessions", tick, (tick % 4) as f64);
            series.push("fairness-jain", tick, 1.0 - tick as f64 * 0.02);
        }
        let fleet = PromFleet {
            name: "storm",
            series: &series,
            anomalies: &[("rung-flap", 2), ("starvation", 1), ("admission-storm", 1)],
            knee_tick: Some(7),
        };
        let text = render_fleet(&fleet);
        assert_eq!(text, render_fleet(&fleet), "snapshot must be deterministic");
        assert!(text.contains(
            "gss_fleet_series{fleet=\"storm\",series=\"active-sessions\",stat=\"max\"} 3"
        ));
        assert!(text.contains(
            "gss_fleet_series_samples_total{fleet=\"storm\",series=\"fairness-jain\"} 10"
        ));
        assert!(text.contains("gss_fleet_anomalies_total{fleet=\"storm\",kind=\"starvation\"} 1"));
        assert!(text.contains("gss_fleet_knee_tick{fleet=\"storm\"} 7"));
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (metric, v) = line.rsplit_once(' ').expect("sample has a value");
            assert!(metric.contains('{') && metric.ends_with('}'), "{line}");
            assert!(v == "NaN" || v.parse::<f64>().is_ok(), "{line}");
        }
        // a kneeless run exports the -1 sentinel
        let calm = PromFleet {
            knee_tick: None,
            ..fleet
        };
        assert!(render_fleet(&calm).contains("gss_fleet_knee_tick{fleet=\"storm\"} -1"));
    }
}
