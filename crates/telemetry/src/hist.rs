//! Fixed-bucket histograms for latency and byte distributions.
//!
//! The recorder keeps one histogram per pipeline stage plus one for
//! whole-frame motion-to-photon time and one for per-frame wire bytes. All
//! storage is inline fixed-size arrays so recording a sample never
//! allocates. Buckets are geometrically spaced between a configured floor
//! and ceiling; each bucket keeps both a count and a running sum, so a
//! percentile query returns the *mean of the bucket containing that rank*
//! rather than a bucket edge. That makes percentiles exact whenever a
//! bucket holds identical values — in particular, a single-sample histogram
//! reports that sample exactly at every percentile.

/// Number of buckets per histogram. 64 geometric buckets over three to six
/// decades keeps worst-case relative bucket width under ~20%.
pub const BUCKETS: usize = 64;

/// A trace-linked exemplar: the identity of the worst sample a histogram
/// absorbed, so a percentile line in an exported snapshot can link straight
/// back to the causal trace of the frame that produced it.
///
/// The exemplar always describes the *maximum* recorded sample, which by
/// construction lives in the histogram's p99 bucket (the top non-empty
/// bucket contains the max, and the p99 rank can never land above it), so
/// annotating a p99 line with it is exact, never a bucket artifact.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct Exemplar {
    /// Globally unique trace id of the frame that produced the sample
    /// (`pid * 1_000_000 + frame` in the Chrome trace export).
    pub trace_id: u64,
    /// The exact sample value (not bucketed).
    pub value: f64,
}

/// A geometric fixed-bucket histogram with per-bucket count and sum.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    /// Precomputed `BUCKETS / log2(hi / lo)` so bucket lookup is one log2.
    inv_log_span: f64,
    counts: [u64; BUCKETS],
    sums: [f64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    below_range: u64,
    above_range: u64,
    rejected: u64,
    exemplar: Option<Exemplar>,
}

/// Compact summary of a recorded distribution.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct DistSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest recorded sample (exact, not bucketed).
    pub min: f64,
    /// Largest recorded sample (exact, not bucketed).
    pub max: f64,
    /// Arithmetic mean (exact, from the running sum).
    pub mean: f64,
    /// Median estimate (bucket mean at rank 0.50).
    pub p50: f64,
    /// 90th percentile estimate.
    pub p90: f64,
    /// 95th percentile estimate.
    pub p95: f64,
    /// 99th percentile estimate.
    pub p99: f64,
    /// Samples that fell below the histogram range and were clamped into
    /// the first bucket (their exact values still feed min/mean).
    pub below_range: u64,
    /// Samples that fell above the histogram range and were clamped into
    /// the last bucket — a nonzero value flags a compressed p99.
    pub above_range: u64,
    /// Non-finite or negative samples that were rejected outright (not
    /// part of `count`); silent drops would bias every statistic.
    pub rejected: u64,
}

impl Histogram {
    /// A histogram spanning `[lo, hi]`; samples outside the range clamp to
    /// the first or last bucket (their exact values still feed min/max and
    /// the mean). `lo` and `hi` must be positive with `lo < hi`.
    pub fn with_range(lo: f64, hi: f64) -> Self {
        assert!(
            lo > 0.0 && hi > lo,
            "histogram range must satisfy 0 < lo < hi"
        );
        Histogram {
            lo,
            hi,
            inv_log_span: BUCKETS as f64 / (hi / lo).log2(),
            counts: [0; BUCKETS],
            sums: [0.0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            below_range: 0,
            above_range: 0,
            rejected: 0,
            exemplar: None,
        }
    }

    /// Range suited to per-stage and whole-frame latencies: 10 µs to 1 s.
    pub fn latency_ms() -> Self {
        Histogram::with_range(0.01, 1000.0)
    }

    /// Range suited to per-frame wire sizes: 16 B to 16 MiB.
    pub fn bytes() -> Self {
        Histogram::with_range(16.0, 16.0 * 1024.0 * 1024.0)
    }

    fn bucket_index(&self, value: f64) -> usize {
        if value <= self.lo {
            return 0;
        }
        if value >= self.hi {
            return BUCKETS - 1;
        }
        let idx = ((value / self.lo).log2() * self.inv_log_span) as usize;
        idx.min(BUCKETS - 1)
    }

    /// Records one sample. Non-finite and negative samples are rejected so
    /// a modelling bug upstream cannot poison the running sums — but the
    /// rejection is counted (see [`Histogram::rejected`]), never silent.
    /// Out-of-range samples clamp into the edge buckets and bump the
    /// under/overflow counters so a biased p99 is visible in summaries.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            self.rejected += 1;
            return;
        }
        if value < self.lo {
            self.below_range += 1;
        } else if value > self.hi {
            self.above_range += 1;
        }
        let idx = self.bucket_index(value);
        self.counts[idx] += 1;
        self.sums[idx] += value;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records one sample and tags it with the trace id of the frame that
    /// produced it. The histogram keeps the exemplar of the *largest*
    /// accepted sample seen so far — on ties the first wins, so replaying
    /// the same event stream always reproduces the same exemplar. Rejected
    /// samples (non-finite / negative) never displace an exemplar.
    pub fn record_with_exemplar(&mut self, value: f64, trace_id: u64) {
        let before = self.count;
        self.record(value);
        if self.count == before {
            return; // rejected
        }
        let worse = match self.exemplar {
            Some(e) => value > e.value,
            None => true,
        };
        if worse {
            self.exemplar = Some(Exemplar { trace_id, value });
        }
    }

    /// The exemplar of the worst recorded sample, if any sample was tagged
    /// via [`Histogram::record_with_exemplar`].
    pub fn exemplar(&self) -> Option<Exemplar> {
        self.exemplar
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples recorded below the configured range (clamped to bucket 0).
    pub fn below_range(&self) -> u64 {
        self.below_range
    }

    /// Samples recorded above the configured range (clamped to the last
    /// bucket).
    pub fn above_range(&self) -> u64 {
        self.above_range
    }

    /// Non-finite or negative samples rejected by [`Histogram::record`].
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Mean of the recorded samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Value estimate at quantile `q` in `[0, 1]`: the mean of the bucket
    /// containing the sample of that rank. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the selected sample; q = 0 selects the first.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.counts[i];
            if seen >= rank {
                // the bucket mean can drift past the exact extremes by
                // float-summation noise; a quantile estimate must never
                // leave the observed range
                return Some((self.sums[i] / self.counts[i] as f64).clamp(self.min, self.max));
            }
        }
        // Unreachable while count equals the sum of bucket counts; fall back
        // to the exact max rather than panicking on an internal error.
        Some(self.max)
    }

    /// Full distribution summary, or `None` when no samples were recorded.
    pub fn summary(&self) -> Option<DistSummary> {
        if self.count == 0 {
            return None;
        }
        Some(DistSummary {
            count: self.count,
            min: self.min,
            max: self.max,
            mean: self.sum / self.count as f64,
            p50: self.quantile(0.50).unwrap_or(self.max),
            p90: self.quantile(0.90).unwrap_or(self.max),
            p95: self.quantile(0.95).unwrap_or(self.max),
            p99: self.quantile(0.99).unwrap_or(self.max),
            below_range: self.below_range,
            above_range: self.above_range,
            rejected: self.rejected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::latency_ms();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.summary(), None);
    }

    #[test]
    fn single_sample_is_exact_at_every_percentile() {
        let mut h = Histogram::latency_ms();
        h.record(7.25);
        let s = h.summary().unwrap();
        assert_eq!(s.count, 1);
        for v in [s.min, s.max, s.mean, s.p50, s.p90, s.p95, s.p99] {
            assert_eq!(v, 7.25);
        }
    }

    #[test]
    fn identical_samples_stay_exact() {
        let mut h = Histogram::latency_ms();
        for _ in 0..1000 {
            h.record(3.5);
        }
        let s = h.summary().unwrap();
        assert_eq!(s.p50, 3.5);
        assert_eq!(s.p99, 3.5);
        assert_eq!(s.mean, 3.5);
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let mut h = Histogram::latency_ms();
        for i in 1..=1000 {
            h.record(i as f64 * 0.05); // 0.05 .. 50.0 ms
        }
        let s = h.summary().unwrap();
        assert!(s.min <= s.p50 && s.p50 <= s.p90, "{s:?}");
        assert!(s.p90 <= s.p95 && s.p95 <= s.p99, "{s:?}");
        assert!(s.p99 <= s.max, "{s:?}");
        // Geometric buckets bound relative error; the true p50 is 25.025.
        assert!((s.p50 - 25.0).abs() / 25.0 < 0.2, "p50 = {}", s.p50);
        assert!((s.p99 - 49.5).abs() / 49.5 < 0.2, "p99 = {}", s.p99);
    }

    #[test]
    fn out_of_range_samples_clamp_to_edge_buckets() {
        let mut h = Histogram::with_range(1.0, 100.0);
        h.record(0.001); // below lo -> first bucket
        h.record(5000.0); // above hi -> last bucket
        let s = h.summary().unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 0.001);
        assert_eq!(s.max, 5000.0);
        // the clamps are not silent: the summary carries the overflow tallies
        assert_eq!(s.below_range, 1);
        assert_eq!(s.above_range, 1);
        assert_eq!(s.rejected, 0);
    }

    #[test]
    fn rejects_non_finite_and_negative() {
        let mut h = Histogram::latency_ms();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-1.0);
        assert_eq!(h.count(), 0);
        // rejected samples never vanish silently
        assert_eq!(h.rejected(), 3);
        assert_eq!(h.summary(), None);
    }

    #[test]
    fn in_range_samples_do_not_touch_overflow_counters() {
        let mut h = Histogram::with_range(1.0, 100.0);
        h.record(1.0); // exactly lo
        h.record(42.0);
        h.record(100.0); // exactly hi
        assert_eq!(h.count(), 3);
        assert_eq!(h.below_range(), 0);
        assert_eq!(h.above_range(), 0);
        assert_eq!(h.rejected(), 0);
    }

    #[test]
    fn exemplar_tracks_the_worst_sample_first_on_ties() {
        let mut h = Histogram::latency_ms();
        assert_eq!(h.exemplar(), None);
        h.record_with_exemplar(5.0, 11);
        h.record_with_exemplar(9.0, 22);
        h.record_with_exemplar(3.0, 33);
        h.record_with_exemplar(9.0, 44); // tie: the earlier frame keeps the slot
        let e = h.exemplar().unwrap();
        assert_eq!(e.trace_id, 22);
        assert_eq!(e.value, 9.0);
        // untagged samples never displace an exemplar
        h.record(100.0);
        assert_eq!(h.exemplar().unwrap().trace_id, 22);
    }

    #[test]
    fn rejected_samples_never_become_exemplars() {
        let mut h = Histogram::latency_ms();
        h.record_with_exemplar(f64::NAN, 7);
        h.record_with_exemplar(-2.0, 8);
        assert_eq!(h.exemplar(), None);
        assert_eq!(h.rejected(), 2);
        h.record_with_exemplar(1.0, 9);
        h.record_with_exemplar(f64::INFINITY, 10);
        assert_eq!(h.exemplar().unwrap().trace_id, 9);
    }

    #[test]
    fn exemplar_value_sits_in_the_top_bucket_with_the_max() {
        // The exemplar is the exact max, so a p99 query over a skewed
        // distribution lands in (or below) the exemplar's bucket — the
        // annotation can never point above the distribution.
        let mut h = Histogram::latency_ms();
        for i in 0..200 {
            h.record_with_exemplar(1.0 + (i % 7) as f64 * 0.01, 1000 + i);
        }
        h.record_with_exemplar(42.0, 9999);
        let s = h.summary().unwrap();
        let e = h.exemplar().unwrap();
        assert_eq!(e.trace_id, 9999);
        assert_eq!(e.value, s.max);
        assert!(s.p99 <= e.value);
    }

    #[test]
    fn bytes_range_covers_packet_sizes() {
        let mut h = Histogram::bytes();
        h.record(1500.0);
        h.record(64_000.0);
        let s = h.summary().unwrap();
        assert_eq!(s.count, 2);
        assert!(s.p50 >= s.min && s.p99 <= s.max * 1.0 + 1e-9);
    }
}
