//! A minimal recursive-descent JSON parser.
//!
//! The workspace serializes JSON by hand (deterministic string building in
//! [`crate::TelemetrySummary::to_json`], the JSONL sink, the Chrome trace
//! exporter) but until now had no way to read it back. The benchmark
//! regression gate needs to parse committed `BENCH_*.json` baselines, and
//! the trace schema test needs to validate exporter output, so this module
//! provides a small self-contained parser — the workspace deliberately
//! vendors no `serde_json`.
//!
//! Scope: full JSON per RFC 8259 minus two relaxations that match our own
//! writers — numbers are parsed with `f64::from_str` (accepting
//! `1e99`-style exponents) and `\uXXXX` escapes outside the basic
//! multilingual plane must come as surrogate pairs. Input beyond a few
//! hundred nesting levels is rejected to keep recursion bounded.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by [`parse`]; deeper input is rejected
/// rather than risking stack exhaustion on adversarial files.
pub const MAX_DEPTH: usize = 256;

/// A parsed JSON value.
///
/// Objects use a [`BTreeMap`] so iteration order — and therefore any
/// re-serialization — is deterministic regardless of input key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; JSON doesn't distinguish int from float.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup: `value.get("key")` on objects, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses `input` as a single JSON document. Trailing whitespace is
/// allowed; any other trailing content is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input is a &str, so the
                    // byte stream is valid UTF-8 by construction.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let slice = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(slice);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let value = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".to_owned()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":true}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("c").unwrap().get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn unescapes_strings() {
        let doc = parse(r#""line\nquote\" \u0041 \ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str().unwrap(), "line\nquote\" A 😀");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "nul",
            "1.2.3",
            "\"open",
            "{\"a\":1}x",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unescapes_every_escape_form() {
        let doc = parse(r#""\b\f\n\r\t\/\\\"\u0000\u007F""#).unwrap();
        assert_eq!(
            doc.as_str().unwrap(),
            "\u{0008}\u{000C}\n\r\t/\\\"\u{0000}\u{007F}"
        );
    }

    #[test]
    fn rejects_invalid_escapes_and_surrogate_halves() {
        for bad in [
            r#""\x""#,      // unknown escape
            r#""\u12""#,    // truncated \u
            r#""\uZZZZ""#,  // non-hex \u
            r#""\udc00""#,  // lone low surrogate
            r#""\ud83dA""#, // high surrogate with a non-surrogate low half
            "\"\\",         // dangling escape at end of input
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_exponent_form_numbers() {
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("-2.5E-2").unwrap(), Json::Num(-0.025));
        assert_eq!(parse("1E+10").unwrap(), Json::Num(1e10));
        assert_eq!(parse("0.5e0").unwrap(), Json::Num(0.5));
        // overflow saturates the way f64 parsing does rather than erroring
        assert_eq!(parse("2e308").unwrap(), Json::Num(f64::INFINITY));
        // a bare exponent marker is not a number
        for bad in ["1e", "1e+", "-", "-e3"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accepts_nesting_at_the_depth_limit() {
        // deepest accepted document: one level shy of the rejection bound
        // exercised by `rejects_pathological_nesting`
        let n = MAX_DEPTH + 1;
        let deep = "[".repeat(n) + &"]".repeat(n);
        assert!(parse(&deep).is_ok());
        // alternating object/array nesting counts against the same limit
        let mixed = r#"{"a":["#.repeat(64) + "1" + &"]}".repeat(64);
        let mut doc = &parse(&mixed).unwrap();
        for _ in 0..64 {
            doc = &doc.get("a").unwrap().as_arr().unwrap()[0];
        }
        assert_eq!(doc, &Json::Num(1.0));
    }

    #[test]
    fn rejects_trailing_garbage_but_allows_trailing_whitespace() {
        for bad in ["[1] [2]", "true false", "1 2", "{\"a\":1},", "null,"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        assert_eq!(
            parse(" \t\n[1, 2] \r\n ").unwrap().as_arr().unwrap().len(),
            2
        );
    }

    #[test]
    fn round_trips_telemetry_summary_json() {
        let summary = crate::TelemetrySummary::default().to_json();
        let doc = parse(&summary).unwrap();
        assert_eq!(doc.get("frames").and_then(Json::as_f64), Some(0.0));
        assert_eq!(doc.get("mtp_ms"), Some(&Json::Null));
    }
}
