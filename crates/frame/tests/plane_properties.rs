//! Property-based tests for the core plane/region invariants everything else
//! in the workspace leans on.

use gss_frame::{DepthMap, Plane, Rect};
use proptest::prelude::*;

fn arb_plane() -> impl Strategy<Value = Plane<f32>> {
    (1usize..24, 1usize..24).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0.0f32..255.0, w * h)
            .prop_map(move |data| Plane::from_vec(w, h, data).unwrap())
    })
}

fn arb_rect_in(w: usize, h: usize) -> impl Strategy<Value = Rect> {
    (0..w, 0..h).prop_flat_map(move |(x, y)| {
        (1..=w - x, 1..=h - y).prop_map(move |(rw, rh)| Rect::new(x, y, rw, rh))
    })
}

proptest! {
    #[test]
    fn integral_window_sum_matches_naive(p in arb_plane()) {
        let (w, h) = p.size();
        let sat = p.integral();
        // probe a handful of deterministic windows
        for &(fx, fy, fw, fh) in &[(0.0, 0.0, 1.0, 1.0), (0.25, 0.25, 0.5, 0.5), (0.5, 0.0, 0.5, 1.0)] {
            let x = (fx * w as f64) as usize;
            let y = (fy * h as f64) as usize;
            let rw = ((fw * w as f64) as usize).max(1).min(w - x);
            let rh = ((fh * h as f64) as usize).max(1).min(h - y);
            let r = Rect::new(x, y, rw, rh);
            let mut naive = 0.0f64;
            for yy in r.y..r.bottom() {
                for xx in r.x..r.right() {
                    naive += p.get(xx, yy) as f64;
                }
            }
            prop_assert!((sat.window_sum(r) - naive).abs() < 1e-3);
        }
    }

    #[test]
    fn crop_paste_is_identity_inside_region(
        (p, r) in arb_plane().prop_flat_map(|p| {
            let (w, h) = p.size();
            (proptest::strategy::Just(p), arb_rect_in(w, h))
        }),
    ) {
        let crop = p.crop(r).unwrap();
        let mut q = p.clone();
        q.paste(&crop, r.x, r.y).unwrap();
        prop_assert_eq!(q, p);
    }

    #[test]
    fn clamp_to_always_fits(
        x in 0usize..1000, y in 0usize..1000,
        rw in 1usize..1000, rh in 1usize..1000,
        w in 1usize..1000, h in 1usize..1000,
    ) {
        let r = Rect::new(x, y, rw, rh).clamp_to(w, h);
        prop_assert!(r.right() <= w);
        prop_assert!(r.bottom() <= h);
        prop_assert!(!r.is_empty());
    }

    #[test]
    fn intersect_is_contained_in_both(
        ax in 0usize..50, ay in 0usize..50, aw in 1usize..50, ah in 1usize..50,
        bx in 0usize..50, by in 0usize..50, bw in 1usize..50, bh in 1usize..50,
    ) {
        let a = Rect::new(ax, ay, aw, ah);
        let b = Rect::new(bx, by, bw, bh);
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    #[test]
    fn depth_histogram_total_equals_pixels(
        w in 1usize..32, h in 1usize..32, bins in 1usize..64, seed in 0u64..1000,
    ) {
        let d = DepthMap::from_fn(w, h, |x, y| {
            let v = (x as u64).wrapping_mul(2654435761).wrapping_add((y as u64).wrapping_mul(seed + 1));
            (v % 1000) as f32 / 1000.0
        });
        let hist = d.histogram(bins);
        prop_assert_eq!(hist.iter().sum::<usize>(), w * h);
    }

    #[test]
    fn downsample_preserves_mean(p in arb_plane()) {
        let (w, h) = p.size();
        // pad to even dimensions by cropping to the largest even rect
        let ew = w - (w % 2);
        let eh = h - (h % 2);
        prop_assume!(ew >= 2 && eh >= 2);
        let even = p.crop(Rect::new(0, 0, ew, eh)).unwrap();
        let d = even.downsample_box(2);
        prop_assert!((even.mean() - d.mean()).abs() < 1e-3);
    }
}
