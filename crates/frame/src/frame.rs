use crate::{FrameError, Plane, Rect};

/// An 8-bit RGB pixel, used at the display boundary and in image I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb8 {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb8 {
    /// Creates a pixel from its channels.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb8 { r, g, b }
    }

    /// BT.601 full-range RGB → YCbCr components of this pixel — the same
    /// conversion [`Frame::from_rgb_fn`] applies, exposed so renderers can
    /// convert pixels in their own (parallel) loops and assemble a frame
    /// via [`Frame::from_planes`].
    pub fn to_ycbcr(self) -> (f32, f32, f32) {
        rgb_to_ycbcr(self)
    }
}

impl From<[u8; 3]> for Rgb8 {
    fn from(v: [u8; 3]) -> Self {
        Rgb8::new(v[0], v[1], v[2])
    }
}

/// A full-resolution planar YCbCr picture.
///
/// Every stage of the reproduction (render output, codec input/output, SR
/// input/output, metrics) operates on this type. Samples are `f32` in the
/// `0.0..=255.0` domain; Cb/Cr are centered at 128. Chroma is stored at full
/// resolution here — the codec performs its own 4:2:0 subsampling when
/// modelling bitrate.
///
/// ```
/// use gss_frame::{Frame, Rgb8};
///
/// let f = Frame::from_rgb_fn(2, 2, |x, y| Rgb8::new((x * 255) as u8, 0, (y * 255) as u8));
/// let rgb = f.to_rgb8();
/// assert_eq!(rgb.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    y: Plane<f32>,
    cb: Plane<f32>,
    cr: Plane<f32>,
}

impl Frame {
    /// A black frame (`Y=0, Cb=Cr=128`).
    pub fn new(width: usize, height: usize) -> Self {
        Frame::filled(width, height, [0.0, 128.0, 128.0])
    }

    /// A frame with constant `[y, cb, cr]` everywhere.
    pub fn filled(width: usize, height: usize, ycbcr: [f32; 3]) -> Self {
        Frame {
            y: Plane::filled(width, height, ycbcr[0]),
            cb: Plane::filled(width, height, ycbcr[1]),
            cr: Plane::filled(width, height, ycbcr[2]),
        }
    }

    /// Assembles a frame from three same-sized planes.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::SizeMismatch`] when plane sizes differ.
    pub fn from_planes(y: Plane<f32>, cb: Plane<f32>, cr: Plane<f32>) -> Result<Self, FrameError> {
        if y.size() != cb.size() {
            return Err(FrameError::SizeMismatch {
                left: y.size(),
                right: cb.size(),
            });
        }
        if y.size() != cr.size() {
            return Err(FrameError::SizeMismatch {
                left: y.size(),
                right: cr.size(),
            });
        }
        Ok(Frame { y, cb, cr })
    }

    /// Builds a frame by evaluating an RGB shading function per pixel.
    pub fn from_rgb_fn(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> Rgb8,
    ) -> Self {
        let mut y = Plane::new(width, height);
        let mut cb = Plane::new(width, height);
        let mut cr = Plane::new(width, height);
        for py in 0..height {
            for px in 0..width {
                let rgb = f(px, py);
                let (yy, cbb, crr) = rgb_to_ycbcr(rgb);
                y.set(px, py, yy);
                cb.set(px, py, cbb);
                cr.set(px, py, crr);
            }
        }
        Frame { y, cb, cr }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.y.width()
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.y.height()
    }

    /// `(width, height)` pair.
    pub fn size(&self) -> (usize, usize) {
        self.y.size()
    }

    /// Luma plane.
    pub fn y(&self) -> &Plane<f32> {
        &self.y
    }

    /// Blue-difference chroma plane.
    pub fn cb(&self) -> &Plane<f32> {
        &self.cb
    }

    /// Red-difference chroma plane.
    pub fn cr(&self) -> &Plane<f32> {
        &self.cr
    }

    /// Mutable luma plane.
    pub fn y_mut(&mut self) -> &mut Plane<f32> {
        &mut self.y
    }

    /// Mutable blue-difference chroma plane.
    pub fn cb_mut(&mut self) -> &mut Plane<f32> {
        &mut self.cb
    }

    /// Mutable red-difference chroma plane.
    pub fn cr_mut(&mut self) -> &mut Plane<f32> {
        &mut self.cr
    }

    /// The three planes as an array, Y first.
    pub fn planes(&self) -> [&Plane<f32>; 3] {
        [&self.y, &self.cb, &self.cr]
    }

    /// Consumes the frame and returns `(y, cb, cr)`.
    pub fn into_planes(self) -> (Plane<f32>, Plane<f32>, Plane<f32>) {
        (self.y, self.cb, self.cr)
    }

    /// Applies `f` to each plane, producing a new frame (used by resamplers
    /// that treat channels independently).
    ///
    /// # Panics
    ///
    /// Panics if `f` returns planes of differing sizes.
    pub fn map_planes(&self, mut f: impl FnMut(&Plane<f32>) -> Plane<f32>) -> Frame {
        let y = f(&self.y);
        let cb = f(&self.cb);
        let cr = f(&self.cr);
        Frame::from_planes(y, cb, cr).expect("map_planes closure changed sizes inconsistently")
    }

    /// Crops `region` out of all three planes.
    ///
    /// # Panics
    ///
    /// Panics when `region` exceeds the frame bounds; use
    /// [`Rect::clamp_to`] first when the region is untrusted.
    pub fn crop(&self, region: Rect) -> Frame {
        Frame {
            y: self.y.crop(region).expect("crop region out of bounds"),
            cb: self.cb.crop(region).expect("crop region out of bounds"),
            cr: self.cr.crop(region).expect("crop region out of bounds"),
        }
    }

    /// Pastes `patch` into all three planes at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when the patch does not fit.
    pub fn paste(&mut self, patch: &Frame, x: usize, y: usize) {
        self.y.paste(&patch.y, x, y).expect("paste out of bounds");
        self.cb.paste(&patch.cb, x, y).expect("paste out of bounds");
        self.cr.paste(&patch.cr, x, y).expect("paste out of bounds");
    }

    /// Box-filter downsample of all planes by an integer factor.
    ///
    /// # Panics
    ///
    /// Panics when `factor` does not divide both dimensions.
    pub fn downsample_box(&self, factor: usize) -> Frame {
        self.map_planes(|p| p.downsample_box(factor))
    }

    /// Clamps all samples into the valid 8-bit range.
    pub fn clamp_in_place(&mut self) {
        self.y.clamp_in_place(0.0, 255.0);
        self.cb.clamp_in_place(0.0, 255.0);
        self.cr.clamp_in_place(0.0, 255.0);
    }

    /// Converts to interleaved 8-bit RGB (row-major), for display/IO.
    pub fn to_rgb8(&self) -> Vec<Rgb8> {
        let (w, h) = self.size();
        let mut out = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                out.push(ycbcr_to_rgb(
                    self.y.get(x, y),
                    self.cb.get(x, y),
                    self.cr.get(x, y),
                ));
            }
        }
        out
    }

    /// Number of pixels.
    pub fn pixel_count(&self) -> usize {
        self.width() * self.height()
    }
}

/// BT.601 full-range RGB → YCbCr.
pub(crate) fn rgb_to_ycbcr(rgb: Rgb8) -> (f32, f32, f32) {
    let r = rgb.r as f32;
    let g = rgb.g as f32;
    let b = rgb.b as f32;
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = 128.0 - 0.168_736 * r - 0.331_264 * g + 0.5 * b;
    let cr = 128.0 + 0.5 * r - 0.418_688 * g - 0.081_312 * b;
    (y, cb, cr)
}

/// BT.601 full-range YCbCr → RGB with saturation.
pub(crate) fn ycbcr_to_rgb(y: f32, cb: f32, cr: f32) -> Rgb8 {
    let r = y + 1.402 * (cr - 128.0);
    let g = y - 0.344_136 * (cb - 128.0) - 0.714_136 * (cr - 128.0);
    let b = y + 1.772 * (cb - 128.0);
    Rgb8::new(
        r.round().clamp(0.0, 255.0) as u8,
        g.round().clamp(0.0, 255.0) as u8,
        b.round().clamp(0.0, 255.0) as u8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_ycbcr_roundtrip_is_near_lossless() {
        for &(r, g, b) in &[
            (0u8, 0u8, 0u8),
            (255, 255, 255),
            (255, 0, 0),
            (0, 255, 0),
            (0, 0, 255),
            (17, 200, 93),
            (128, 128, 128),
        ] {
            let (y, cb, cr) = rgb_to_ycbcr(Rgb8::new(r, g, b));
            let back = ycbcr_to_rgb(y, cb, cr);
            assert!(
                (back.r as i32 - r as i32).abs() <= 1,
                "r: {r} vs {}",
                back.r
            );
            assert!(
                (back.g as i32 - g as i32).abs() <= 1,
                "g: {g} vs {}",
                back.g
            );
            assert!(
                (back.b as i32 - b as i32).abs() <= 1,
                "b: {b} vs {}",
                back.b
            );
        }
    }

    #[test]
    fn grey_has_neutral_chroma() {
        let (y, cb, cr) = rgb_to_ycbcr(Rgb8::new(100, 100, 100));
        assert!((y - 100.0).abs() < 0.5);
        assert!((cb - 128.0).abs() < 0.5);
        assert!((cr - 128.0).abs() < 0.5);
    }

    #[test]
    fn from_planes_validates_sizes() {
        let a: Plane<f32> = Plane::new(2, 2);
        let b: Plane<f32> = Plane::new(2, 3);
        assert!(Frame::from_planes(a.clone(), a.clone(), a.clone()).is_ok());
        assert!(Frame::from_planes(a.clone(), b.clone(), a.clone()).is_err());
        assert!(Frame::from_planes(a.clone(), a, b).is_err());
    }

    #[test]
    fn crop_paste_roundtrip_on_frame() {
        let f = Frame::from_rgb_fn(8, 8, |x, y| Rgb8::new((x * 30) as u8, (y * 30) as u8, 0));
        let r = Rect::new(2, 2, 4, 4);
        let patch = f.crop(r);
        let mut g = Frame::new(8, 8);
        g.paste(&patch, 2, 2);
        assert_eq!(g.y().get(3, 3), f.y().get(3, 3));
        assert_eq!(g.y().get(0, 0), 0.0);
    }

    #[test]
    fn downsample_halves_dimensions() {
        let f = Frame::new(8, 6);
        let d = f.downsample_box(2);
        assert_eq!(d.size(), (4, 3));
    }

    #[test]
    fn to_rgb8_len_matches_pixels() {
        let f = Frame::new(5, 3);
        assert_eq!(f.to_rgb8().len(), 15);
        assert_eq!(f.pixel_count(), 15);
    }
}
