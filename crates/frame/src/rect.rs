use serde::{Deserialize, Serialize};

/// An axis-aligned pixel region: origin `(x, y)` plus `width x height`.
///
/// Used for RoI windows, crops and paste targets. Coordinates are in the
/// source plane's pixel space with `(0, 0)` at the top-left corner.
///
/// ```
/// use gss_frame::Rect;
///
/// let roi = Rect::new(10, 20, 300, 300);
/// assert_eq!(roi.area(), 90_000);
/// assert!(roi.contains(10, 20));
/// assert!(!roi.contains(310, 20));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord,
)]
pub struct Rect {
    /// Left edge (inclusive), in pixels.
    pub x: usize,
    /// Top edge (inclusive), in pixels.
    pub y: usize,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

impl Rect {
    /// Creates a region from its top-left corner and extent.
    pub const fn new(x: usize, y: usize, width: usize, height: usize) -> Self {
        Rect {
            x,
            y,
            width,
            height,
        }
    }

    /// A square region of side `side` at `(x, y)`.
    pub const fn square(x: usize, y: usize, side: usize) -> Self {
        Rect::new(x, y, side, side)
    }

    /// Number of pixels covered.
    pub const fn area(&self) -> usize {
        self.width * self.height
    }

    /// `true` when either extent is zero.
    pub const fn is_empty(&self) -> bool {
        self.width == 0 || self.height == 0
    }

    /// Exclusive right edge.
    pub const fn right(&self) -> usize {
        self.x + self.width
    }

    /// Exclusive bottom edge.
    pub const fn bottom(&self) -> usize {
        self.y + self.height
    }

    /// `true` if the pixel `(px, py)` lies inside the region.
    pub const fn contains(&self, px: usize, py: usize) -> bool {
        px >= self.x && px < self.right() && py >= self.y && py < self.bottom()
    }

    /// `true` if `other` lies entirely inside `self`.
    pub const fn contains_rect(&self, other: &Rect) -> bool {
        other.x >= self.x
            && other.y >= self.y
            && other.right() <= self.right()
            && other.bottom() <= self.bottom()
    }

    /// Intersection of two regions, or `None` when disjoint/empty.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let right = self.right().min(other.right());
        let bottom = self.bottom().min(other.bottom());
        if right > x && bottom > y {
            Some(Rect::new(x, y, right - x, bottom - y))
        } else {
            None
        }
    }

    /// Fraction of `self` covered by `other` (0.0 when disjoint, 1.0 when
    /// fully covered). Returns 0.0 for an empty `self`.
    pub fn overlap_fraction(&self, other: &Rect) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        match self.intersect(other) {
            Some(i) => i.area() as f64 / self.area() as f64,
            None => 0.0,
        }
    }

    /// Translates the region so it fits inside a `width x height` plane,
    /// clamping the origin (the extent is preserved when it fits; otherwise
    /// the extent is truncated to the plane size).
    pub fn clamp_to(&self, width: usize, height: usize) -> Rect {
        let w = self.width.min(width);
        let h = self.height.min(height);
        let x = self.x.min(width - w);
        let y = self.y.min(height - h);
        Rect::new(x, y, w, h)
    }

    /// The region scaled by an integer factor (RoI coordinates on the
    /// upscaled frame).
    pub const fn scaled(&self, factor: usize) -> Rect {
        Rect::new(
            self.x * factor,
            self.y * factor,
            self.width * factor,
            self.height * factor,
        )
    }

    /// Rounds the region outward to even luma coordinates: the origin
    /// rounds down to even, the right/bottom edges round up to even. A
    /// 4:2:0 codec halves RoI coordinates for the chroma grid, so an odd
    /// origin or extent would shear the chroma window against luma when a
    /// patch is encoded or merged; the even cover always contains the
    /// original region. Callers clamp to the (even) frame afterwards.
    pub const fn aligned_even(&self) -> Rect {
        let x = self.x & !1;
        let y = self.y & !1;
        let right = self.right().next_multiple_of(2);
        let bottom = self.bottom().next_multiple_of(2);
        Rect::new(x, y, right - x, bottom - y)
    }

    /// Center of the region in pixel coordinates (rounded down).
    pub const fn center(&self) -> (usize, usize) {
        (self.x + self.width / 2, self.y + self.height / 2)
    }

    /// Squared Euclidean distance between the region center and `(cx, cy)`.
    pub fn center_distance_sq(&self, cx: f64, cy: f64) -> f64 {
        let (x, y) = self.center();
        let dx = x as f64 - cx;
        let dy = y as f64 - cy;
        dx * dx + dy * dy
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}+{}+{}", self.width, self.height, self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_basics() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(&b), Some(Rect::new(5, 5, 5, 5)));
        let c = Rect::new(20, 20, 4, 4);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn intersection_is_commutative() {
        let a = Rect::new(3, 7, 13, 9);
        let b = Rect::new(8, 2, 20, 11);
        assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    #[test]
    fn touching_edges_do_not_intersect() {
        let a = Rect::new(0, 0, 5, 5);
        let b = Rect::new(5, 0, 5, 5);
        assert_eq!(a.intersect(&b), None);
    }

    #[test]
    fn overlap_fraction_bounds() {
        let a = Rect::new(0, 0, 10, 10);
        assert_eq!(a.overlap_fraction(&a), 1.0);
        assert_eq!(a.overlap_fraction(&Rect::new(50, 50, 2, 2)), 0.0);
        let half = a.overlap_fraction(&Rect::new(0, 0, 5, 10));
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clamp_keeps_extent_when_it_fits() {
        let r = Rect::new(100, 100, 30, 30).clamp_to(120, 110);
        assert_eq!(r, Rect::new(90, 80, 30, 30));
    }

    #[test]
    fn clamp_truncates_oversized_extent() {
        let r = Rect::new(0, 0, 500, 500).clamp_to(100, 80);
        assert_eq!(r, Rect::new(0, 0, 100, 80));
    }

    #[test]
    fn scaled_scales_all_fields() {
        let r = Rect::new(3, 4, 5, 6).scaled(2);
        assert_eq!(r, Rect::new(6, 8, 10, 12));
    }

    #[test]
    fn contains_rect_is_reflexive() {
        let r = Rect::new(2, 3, 7, 8);
        assert!(r.contains_rect(&r));
        assert!(!Rect::new(2, 3, 6, 8).contains_rect(&r));
    }

    #[test]
    fn display_format() {
        assert_eq!(Rect::new(1, 2, 3, 4).to_string(), "3x4+1+2");
    }

    #[test]
    fn aligned_even_covers_and_is_even() {
        for (x, y, w, h) in [
            (1usize, 1usize, 3usize, 5usize),
            (0, 0, 7, 7),
            (2, 4, 6, 8),
            (5, 3, 1, 1),
            (0, 1, 2, 3),
        ] {
            let r = Rect::new(x, y, w, h);
            let a = r.aligned_even();
            assert_eq!(a.x % 2, 0, "{r} -> {a}");
            assert_eq!(a.y % 2, 0, "{r} -> {a}");
            assert_eq!(a.width % 2, 0, "{r} -> {a}");
            assert_eq!(a.height % 2, 0, "{r} -> {a}");
            assert!(a.contains_rect(&r), "{a} must cover {r}");
            // growth is at most one pixel per edge
            assert!(a.width <= w + 2 && a.height <= h + 2);
        }
    }

    #[test]
    fn aligned_even_is_identity_on_even_rects() {
        let r = Rect::new(4, 6, 10, 12);
        assert_eq!(r.aligned_even(), r);
    }
}
