//! Minimal binary PPM/PGM writers for inspecting pipeline stages.
//!
//! The `roi_visualizer` example dumps rendered frames (PPM) and depth-map
//! preprocessing stages (PGM) with these helpers; no external image crate is
//! needed.

use crate::{DepthMap, Frame, Plane};
use std::io::{self, Write};
use std::path::Path;

/// Writes a frame as a binary PPM (P6) image.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
pub fn write_ppm<W: Write>(mut w: W, frame: &Frame) -> io::Result<()> {
    let (width, height) = frame.size();
    write!(w, "P6\n{width} {height}\n255\n")?;
    let mut buf = Vec::with_capacity(width * height * 3);
    for px in frame.to_rgb8() {
        buf.extend_from_slice(&[px.r, px.g, px.b]);
    }
    w.write_all(&buf)
}

/// Writes a frame as a PPM file at `path`.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_ppm<P: AsRef<Path>>(path: P, frame: &Frame) -> io::Result<()> {
    write_ppm(std::fs::File::create(path)?, frame)
}

/// Writes an `f32` plane as a binary PGM (P5) image, mapping `[lo, hi]`
/// linearly onto `0..=255`.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
pub fn write_pgm<W: Write>(mut w: W, plane: &Plane<f32>, lo: f32, hi: f32) -> io::Result<()> {
    let (width, height) = plane.size();
    write!(w, "P5\n{width} {height}\n255\n")?;
    let span = (hi - lo).max(f32::EPSILON);
    let buf: Vec<u8> = plane
        .iter()
        .map(|&v| (((v - lo) / span).clamp(0.0, 1.0) * 255.0).round() as u8)
        .collect();
    w.write_all(&buf)
}

/// Writes a depth map as a PGM file; near pixels come out dark, matching the
/// paper's Fig. 5 rendering of depth maps.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_depth_pgm<P: AsRef<Path>>(path: P, depth: &DepthMap) -> io::Result<()> {
    write_pgm(std::fs::File::create(path)?, depth.plane(), 0.0, 1.0)
}

/// Writes an arbitrary plane as a PGM file using its own min/max range.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_plane_pgm<P: AsRef<Path>>(path: P, plane: &Plane<f32>) -> io::Result<()> {
    let (lo, hi) = plane.min_max();
    write_pgm(std::fs::File::create(path)?, plane, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rgb8;

    #[test]
    fn ppm_header_and_payload_size() {
        let f = Frame::from_rgb_fn(3, 2, |_, _| Rgb8::new(1, 2, 3));
        let mut out = Vec::new();
        write_ppm(&mut out, &f).unwrap();
        let header = b"P6\n3 2\n255\n";
        assert!(out.starts_with(header));
        assert_eq!(out.len(), header.len() + 3 * 2 * 3);
    }

    #[test]
    fn pgm_maps_range() {
        let p = Plane::from_fn(2, 1, |x, _| x as f32);
        let mut out = Vec::new();
        write_pgm(&mut out, &p, 0.0, 1.0).unwrap();
        let payload = &out[out.len() - 2..];
        assert_eq!(payload, &[0u8, 255u8]);
    }

    #[test]
    fn pgm_degenerate_range_does_not_divide_by_zero() {
        let p = Plane::filled(2, 2, 0.5f32);
        let mut out = Vec::new();
        write_pgm(&mut out, &p, 0.5, 0.5).unwrap();
        assert_eq!(out.len(), b"P5\n2 2\n255\n".len() + 4);
    }
}
