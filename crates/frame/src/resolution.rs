use serde::{Deserialize, Serialize};
use std::fmt;

/// Named 16:9 stream resolutions used throughout the paper's evaluation.
///
/// ```
/// use gss_frame::Resolution;
///
/// assert_eq!(Resolution::P720.width(), 1280);
/// assert_eq!(Resolution::P720.upscaled(2), Some(Resolution::P1440));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Resolution {
    /// 426x240 — the smallest profiled SR input (Fig. 3b).
    P240,
    /// 640x360.
    P360,
    /// 854x480.
    P480,
    /// 1280x720 — the paper's streaming resolution.
    P720,
    /// 1920x1080.
    P1080,
    /// 2560x1440 (QHD/2K) — the paper's display target.
    P1440,
    /// 3840x2160 (4K).
    P2160,
}

impl Resolution {
    /// All resolutions in ascending order.
    pub const ALL: [Resolution; 7] = [
        Resolution::P240,
        Resolution::P360,
        Resolution::P480,
        Resolution::P720,
        Resolution::P1080,
        Resolution::P1440,
        Resolution::P2160,
    ];

    /// Width in pixels.
    pub const fn width(self) -> usize {
        match self {
            Resolution::P240 => 426,
            Resolution::P360 => 640,
            Resolution::P480 => 854,
            Resolution::P720 => 1280,
            Resolution::P1080 => 1920,
            Resolution::P1440 => 2560,
            Resolution::P2160 => 3840,
        }
    }

    /// Height in pixels.
    pub const fn height(self) -> usize {
        match self {
            Resolution::P240 => 240,
            Resolution::P360 => 360,
            Resolution::P480 => 480,
            Resolution::P720 => 720,
            Resolution::P1080 => 1080,
            Resolution::P1440 => 1440,
            Resolution::P2160 => 2160,
        }
    }

    /// Pixel count.
    pub const fn pixels(self) -> usize {
        self.width() * self.height()
    }

    /// `(width, height)` pair.
    pub const fn size(self) -> (usize, usize) {
        (self.width(), self.height())
    }

    /// The resolution whose height is `self.height() * factor`, when it is
    /// one of the named resolutions.
    pub fn upscaled(self, factor: usize) -> Option<Resolution> {
        let target = self.height() * factor;
        Resolution::ALL.into_iter().find(|r| r.height() == target)
    }

    /// Ratio of pixel counts `self / other`.
    pub fn pixel_ratio(self, other: Resolution) -> f64 {
        self.pixels() as f64 / other.pixels() as f64
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}p", self.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_pixel_count() {
        for pair in Resolution::ALL.windows(2) {
            assert!(pair[0] < pair[1]);
            assert!(pair[0].pixels() < pair[1].pixels());
        }
    }

    #[test]
    fn upscale_factor_two_from_720() {
        assert_eq!(Resolution::P720.upscaled(2), Some(Resolution::P1440));
        assert_eq!(Resolution::P1080.upscaled(2), Some(Resolution::P2160));
        assert_eq!(Resolution::P2160.upscaled(2), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Resolution::P720.to_string(), "720p");
        assert_eq!(Resolution::P1440.to_string(), "1440p");
    }

    #[test]
    fn p720_to_p1440_pixel_ratio_is_quarter() {
        let r = Resolution::P720.pixel_ratio(Resolution::P1440);
        assert!((r - 0.25).abs() < 1e-12);
    }
}
