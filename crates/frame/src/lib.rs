//! Pixel-level substrate for the GameStreamSR reproduction.
//!
//! This crate provides the data types every other crate in the workspace
//! builds on:
//!
//! * [`Plane`] — a generic row-major 2D buffer of samples,
//! * [`Frame`] — a full-resolution planar YCbCr picture with RGB conversion,
//! * [`DepthMap`] — a normalized per-pixel depth buffer (the Z-buffer the
//!   paper's RoI detection consumes),
//! * [`Rect`] — integer pixel regions (RoI windows, crops, paste targets),
//! * [`Resolution`] — named stream resolutions (240p … 2160p),
//! * simple PPM/PGM writers in [`io`] for visual inspection of pipeline
//!   stages.
//!
//! # Example
//!
//! ```
//! use gss_frame::{Frame, Rect};
//!
//! let mut frame = Frame::filled(64, 36, [10.0, 128.0, 128.0]);
//! let roi = Rect::new(16, 8, 32, 16);
//! let patch = frame.crop(roi);
//! assert_eq!(patch.width(), 32);
//! frame.paste(&patch, 16, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod depth;
mod error;
mod frame;
pub mod io;
mod plane;
mod rect;
mod resolution;

pub use depth::DepthMap;
pub use error::FrameError;
pub use frame::{Frame, Rgb8};
pub use plane::{IntegralImage, Plane};
pub use rect::Rect;
pub use resolution::Resolution;

/// Convenience alias: a plane of `f32` samples in the `0.0..=255.0` domain.
pub type PixelPlane = Plane<f32>;
