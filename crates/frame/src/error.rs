use std::fmt;

/// Errors produced by plane/frame construction and region operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// A dimension was zero or the data length did not match `width * height`.
    BadDimensions {
        /// Requested width in pixels.
        width: usize,
        /// Requested height in pixels.
        height: usize,
        /// Length of the provided sample buffer.
        data_len: usize,
    },
    /// A region fell (partly) outside the plane it was applied to.
    RegionOutOfBounds {
        /// The offending region.
        region: super::Rect,
        /// Plane width in pixels.
        width: usize,
        /// Plane height in pixels.
        height: usize,
    },
    /// Two planes/frames that must share a size did not.
    SizeMismatch {
        /// Width/height of the left operand.
        left: (usize, usize),
        /// Width/height of the right operand.
        right: (usize, usize),
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadDimensions {
                width,
                height,
                data_len,
            } => write!(
                f,
                "bad dimensions: {width}x{height} with {data_len} samples"
            ),
            FrameError::RegionOutOfBounds {
                region,
                width,
                height,
            } => write!(
                f,
                "region {region:?} out of bounds for {width}x{height} plane"
            ),
            FrameError::SizeMismatch { left, right } => write!(
                f,
                "size mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            FrameError::BadDimensions {
                width: 0,
                height: 2,
                data_len: 0,
            },
            FrameError::RegionOutOfBounds {
                region: Rect::new(0, 0, 9, 9),
                width: 4,
                height: 4,
            },
            FrameError::SizeMismatch {
                left: (1, 2),
                right: (3, 4),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<FrameError>();
    }
}
