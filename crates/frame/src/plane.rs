use crate::{FrameError, Rect};

/// A row-major 2D buffer of samples.
///
/// `Plane<f32>` carries pixel intensities (in the `0.0..=255.0` domain by
/// convention), depth values, weights and DCT coefficients throughout the
/// workspace; `Plane<i16>` carries quantized codec coefficients.
///
/// ```
/// use gss_frame::Plane;
///
/// let mut p: Plane<f32> = Plane::filled(4, 3, 1.0);
/// *p.get_mut(2, 1) = 9.0;
/// assert_eq!(p.get(2, 1), 9.0);
/// assert_eq!(p.iter().sum::<f32>(), 4.0 * 3.0 - 1.0 + 9.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Plane<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Plane<T> {
    /// Creates a plane filled with `T::default()`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        Plane::filled(width, height, T::default())
    }
}

impl<T: Copy> Plane<T> {
    /// Creates a plane filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(width: usize, height: usize, value: T) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        Plane {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::BadDimensions`] when a dimension is zero or
    /// `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Result<Self, FrameError> {
        if width == 0 || height == 0 || data.len() != width * height {
            return Err(FrameError::BadDimensions {
                width,
                height,
                data_len: data.len(),
            });
        }
        Ok(Plane {
            width,
            height,
            data,
        })
    }

    /// Builds a plane by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Plane {
            width,
            height,
            data,
        }
    }

    /// Width in samples.
    pub const fn width(&self) -> usize {
        self.width
    }

    /// Height in samples.
    pub const fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    pub const fn size(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// The full-plane region `0,0,width,height`.
    pub const fn bounds(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    /// Sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Mutable sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn get_mut(&mut self, x: usize, y: usize) -> &mut T {
        debug_assert!(x < self.width && y < self.height);
        &mut self.data[y * self.width + x]
    }

    /// Sample at `(x, y)` with the coordinates clamped into bounds
    /// (border-replicate addressing, used by every resampler).
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> T {
        let xc = x.clamp(0, self.width as isize - 1) as usize;
        let yc = y.clamp(0, self.height as isize - 1) as usize;
        self.data[yc * self.width + xc]
    }

    /// Writes `value` at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: T) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = value;
    }

    /// Immutable view of a row.
    pub fn row(&self, y: usize) -> &[T] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Mutable view of a row.
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// Iterator over all samples in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Mutable iterator over all samples in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Raw sample slice in row-major order.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw sample slice in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the plane and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Copies the samples under `region` into a new plane.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::RegionOutOfBounds`] when `region` does not fit.
    pub fn crop(&self, region: Rect) -> Result<Plane<T>, FrameError> {
        if region.is_empty() || !self.bounds().contains_rect(&region) {
            return Err(FrameError::RegionOutOfBounds {
                region,
                width: self.width,
                height: self.height,
            });
        }
        let mut data = Vec::with_capacity(region.area());
        for y in region.y..region.bottom() {
            let start = y * self.width + region.x;
            data.extend_from_slice(&self.data[start..start + region.width]);
        }
        Ok(Plane {
            width: region.width,
            height: region.height,
            data,
        })
    }

    /// Copies `patch` into this plane with its top-left corner at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::RegionOutOfBounds`] when the patch does not fit.
    pub fn paste(&mut self, patch: &Plane<T>, x: usize, y: usize) -> Result<(), FrameError> {
        let region = Rect::new(x, y, patch.width, patch.height);
        if !self.bounds().contains_rect(&region) {
            return Err(FrameError::RegionOutOfBounds {
                region,
                width: self.width,
                height: self.height,
            });
        }
        for (row_idx, src_row) in (y..y + patch.height).zip(0..patch.height) {
            let start = row_idx * self.width + x;
            self.data[start..start + patch.width].copy_from_slice(src_row_of(patch, src_row));
        }
        Ok(())
    }

    /// A new plane with `f` applied to every sample.
    pub fn map<U: Copy>(&self, mut f: impl FnMut(T) -> U) -> Plane<U> {
        Plane {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Combines two same-sized planes sample-wise.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::SizeMismatch`] when the sizes differ.
    pub fn zip_map<U: Copy, V: Copy>(
        &self,
        other: &Plane<U>,
        mut f: impl FnMut(T, U) -> V,
    ) -> Result<Plane<V>, FrameError> {
        if self.size() != other.size() {
            return Err(FrameError::SizeMismatch {
                left: self.size(),
                right: other.size(),
            });
        }
        Ok(Plane {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

#[inline]
fn src_row_of<T: Copy>(p: &Plane<T>, y: usize) -> &[T] {
    &p.data[y * p.width..(y + 1) * p.width]
}

impl Plane<f32> {
    /// Sum of all samples in `f64` precision.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }

    /// Minimum and maximum sample values.
    pub fn min_max(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Clamps every sample into `[lo, hi]` in place.
    pub fn clamp_in_place(&mut self, lo: f32, hi: f32) {
        for v in &mut self.data {
            *v = v.clamp(lo, hi);
        }
    }

    /// Box-filter downsample by an integer `factor` (each output sample is
    /// the mean of a `factor x factor` block). This is how the server derives
    /// the low-resolution stream from the native render in the simulation.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is zero or does not divide both dimensions.
    pub fn downsample_box(&self, factor: usize) -> Plane<f32> {
        assert!(factor > 0, "factor must be nonzero");
        assert!(
            self.width.is_multiple_of(factor) && self.height.is_multiple_of(factor),
            "factor {factor} must divide {}x{}",
            self.width,
            self.height
        );
        let ow = self.width / factor;
        let oh = self.height / factor;
        let norm = 1.0 / (factor * factor) as f32;
        Plane::from_fn(ow, oh, |ox, oy| {
            let mut acc = 0.0f32;
            for dy in 0..factor {
                for dx in 0..factor {
                    acc += self.get(ox * factor + dx, oy * factor + dy);
                }
            }
            acc * norm
        })
    }

    /// Summed-area table: `sat[y][x]` is the sum of all samples in the
    /// rectangle `[0, x) x [0, y)`. The table is `(width+1) x (height+1)`.
    /// Window sums become O(1), which is how the RoI search achieves
    /// real-time cost (the paper runs the equivalent reduction on GPU
    /// compute shaders).
    pub fn integral(&self) -> IntegralImage {
        let w = self.width + 1;
        let h = self.height + 1;
        let mut table = vec![0.0f64; w * h];
        for y in 0..self.height {
            let mut row_sum = 0.0f64;
            for x in 0..self.width {
                row_sum += self.get(x, y) as f64;
                table[(y + 1) * w + (x + 1)] = table[y * w + (x + 1)] + row_sum;
            }
        }
        IntegralImage {
            width: w,
            height: h,
            table,
        }
    }
}

/// Summed-area table produced by [`Plane::integral`].
#[derive(Debug, Clone)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    table: Vec<f64>,
}

impl IntegralImage {
    /// Sum of the samples inside `region` of the source plane in O(1).
    ///
    /// # Panics
    ///
    /// Panics when `region` exceeds the source plane bounds.
    pub fn window_sum(&self, region: Rect) -> f64 {
        let x1 = region.x;
        let y1 = region.y;
        let x2 = region.right();
        let y2 = region.bottom();
        assert!(x2 < self.width && y2 < self.height, "region out of bounds");
        let w = self.width;
        self.table[y2 * w + x2] - self.table[y1 * w + x2] - self.table[y2 * w + x1]
            + self.table[y1 * w + x1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates() {
        assert!(Plane::<f32>::from_vec(2, 2, vec![0.0; 4]).is_ok());
        assert!(Plane::<f32>::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Plane::<f32>::from_vec(0, 2, vec![]).is_err());
    }

    #[test]
    fn crop_then_paste_roundtrip() {
        let p = Plane::from_fn(8, 6, |x, y| (y * 8 + x) as f32);
        let r = Rect::new(2, 1, 4, 3);
        let c = p.crop(r).unwrap();
        assert_eq!(c.get(0, 0), p.get(2, 1));
        assert_eq!(c.get(3, 2), p.get(5, 3));
        let mut q = Plane::filled(8, 6, -1.0f32);
        q.paste(&c, 2, 1).unwrap();
        for y in 0..6 {
            for x in 0..8 {
                if r.contains(x, y) {
                    assert_eq!(q.get(x, y), p.get(x, y));
                } else {
                    assert_eq!(q.get(x, y), -1.0);
                }
            }
        }
    }

    #[test]
    fn crop_out_of_bounds_errors() {
        let p: Plane<f32> = Plane::new(4, 4);
        assert!(p.crop(Rect::new(2, 2, 4, 4)).is_err());
        assert!(p.crop(Rect::new(0, 0, 0, 0)).is_err());
    }

    #[test]
    fn paste_out_of_bounds_errors() {
        let mut p: Plane<f32> = Plane::new(4, 4);
        let patch: Plane<f32> = Plane::new(3, 3);
        assert!(p.paste(&patch, 2, 2).is_err());
        assert!(p.paste(&patch, 1, 1).is_ok());
    }

    #[test]
    fn get_clamped_replicates_border() {
        let p = Plane::from_fn(3, 3, |x, y| (y * 3 + x) as f32);
        assert_eq!(p.get_clamped(-5, -5), p.get(0, 0));
        assert_eq!(p.get_clamped(10, 1), p.get(2, 1));
        assert_eq!(p.get_clamped(1, 99), p.get(1, 2));
    }

    #[test]
    fn downsample_box_averages_blocks() {
        let p = Plane::from_fn(4, 4, |x, _| if x < 2 { 0.0 } else { 4.0 });
        let d = p.downsample_box(2);
        assert_eq!(d.size(), (2, 2));
        assert_eq!(d.get(0, 0), 0.0);
        assert_eq!(d.get(1, 1), 4.0);
    }

    #[test]
    fn downsample_preserves_mean() {
        let p = Plane::from_fn(8, 8, |x, y| ((x * 7 + y * 13) % 31) as f32);
        let d = p.downsample_box(4);
        assert!((p.mean() - d.mean()).abs() < 1e-4);
    }

    #[test]
    fn integral_matches_naive_sums() {
        let p = Plane::from_fn(7, 5, |x, y| x as f32 * 1.5 + y as f32 * 0.25);
        let sat = p.integral();
        for y in 0..5 {
            for x in 0..7 {
                for h in 1..=(5 - y) {
                    for w in 1..=(7 - x) {
                        let r = Rect::new(x, y, w, h);
                        let mut naive = 0.0f64;
                        for yy in y..y + h {
                            for xx in x..x + w {
                                naive += p.get(xx, yy) as f64;
                            }
                        }
                        assert!(
                            (sat.window_sum(r) - naive).abs() < 1e-6,
                            "mismatch at {r:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zip_map_checks_sizes() {
        let a: Plane<f32> = Plane::new(2, 2);
        let b: Plane<f32> = Plane::new(3, 2);
        assert!(a.zip_map(&b, |x, y| x + y).is_err());
        let c: Plane<f32> = Plane::filled(2, 2, 1.0);
        let s = a.zip_map(&c, |x, y| x + y).unwrap();
        assert_eq!(s.get(1, 1), 1.0);
    }

    #[test]
    fn min_max_and_clamp() {
        let mut p = Plane::from_fn(3, 1, |x, _| x as f32 * 100.0 - 50.0);
        assert_eq!(p.min_max(), (-50.0, 150.0));
        p.clamp_in_place(0.0, 255.0);
        assert_eq!(p.min_max(), (0.0, 150.0));
    }
}
