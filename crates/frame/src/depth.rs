use crate::{Plane, Rect};

/// A per-pixel depth buffer (Z-buffer) captured during rendering.
///
/// Values are normalized to `0.0..=1.0` where `0.0` is the near plane
/// (closest to the camera/player) and `1.0` the far plane — the convention of
/// the paper's depth maps, where "darker = nearer". The RoI detector in the
/// core crate consumes this type directly, exactly as the paper's server
/// consumes the rendering pipeline's Z-buffer.
///
/// ```
/// use gss_frame::DepthMap;
///
/// let d = DepthMap::from_fn(4, 4, |x, _| if x < 2 { 0.1 } else { 0.9 });
/// assert!(d.get(0, 0) < d.get(3, 0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DepthMap {
    plane: Plane<f32>,
}

impl DepthMap {
    /// A depth map initialized to the far plane everywhere (`1.0`), the
    /// state of a Z-buffer before any geometry is rasterized.
    pub fn far(width: usize, height: usize) -> Self {
        DepthMap {
            plane: Plane::filled(width, height, 1.0),
        }
    }

    /// Builds a depth map from a closure; values are clamped to `[0, 1]`.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        DepthMap {
            plane: Plane::from_fn(width, height, |x, y| f(x, y).clamp(0.0, 1.0)),
        }
    }

    /// Wraps an existing plane, clamping samples into `[0, 1]`.
    pub fn from_plane(mut plane: Plane<f32>) -> Self {
        plane.clamp_in_place(0.0, 1.0);
        DepthMap { plane }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.plane.width()
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.plane.height()
    }

    /// `(width, height)` pair.
    pub fn size(&self) -> (usize, usize) {
        self.plane.size()
    }

    /// Depth at `(x, y)`; `0.0` = near plane, `1.0` = far plane.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        self.plane.get(x, y)
    }

    /// Writes a depth sample, clamped to `[0, 1]`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: f32) {
        self.plane.set(x, y, value.clamp(0.0, 1.0));
    }

    /// Z-test + write: stores `value` only if it is nearer than the current
    /// sample, returning whether the write happened. This is the rasterizer's
    /// depth test.
    #[inline]
    pub fn test_and_set(&mut self, x: usize, y: usize, value: f32) -> bool {
        let v = value.clamp(0.0, 1.0);
        if v < self.plane.get(x, y) {
            self.plane.set(x, y, v);
            true
        } else {
            false
        }
    }

    /// Borrow of the underlying plane.
    pub fn plane(&self) -> &Plane<f32> {
        &self.plane
    }

    /// Consumes the map and returns the underlying plane.
    pub fn into_plane(self) -> Plane<f32> {
        self.plane
    }

    /// "Importance" view of the depth map: `1 - depth`, so near pixels carry
    /// high values. This matches the paper's convention of summing darkness
    /// intensity (nearness) during the RoI search.
    pub fn nearness(&self) -> Plane<f32> {
        self.plane.map(|d| 1.0 - d)
    }

    /// Histogram of depth values with `bins` equal-width buckets over
    /// `[0, 1]`. A sample of exactly `1.0` lands in the last bin.
    ///
    /// # Panics
    ///
    /// Panics when `bins == 0`.
    pub fn histogram(&self, bins: usize) -> Vec<usize> {
        assert!(bins > 0, "histogram needs at least one bin");
        let mut hist = vec![0usize; bins];
        for &d in self.plane.iter() {
            let idx = ((d * bins as f32) as usize).min(bins - 1);
            hist[idx] += 1;
        }
        hist
    }

    /// Mean depth inside a region.
    ///
    /// # Panics
    ///
    /// Panics when `region` exceeds the bounds or is empty.
    pub fn mean_in(&self, region: Rect) -> f64 {
        let crop = self.plane.crop(region).expect("region out of bounds");
        crop.mean()
    }

    /// Box-filter downsample by an integer factor (server-side detection can
    /// run on a reduced-resolution depth map).
    ///
    /// # Panics
    ///
    /// Panics when `factor` does not divide both dimensions.
    pub fn downsample_box(&self, factor: usize) -> DepthMap {
        DepthMap {
            plane: self.plane.downsample_box(factor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn far_is_all_ones() {
        let d = DepthMap::far(3, 3);
        assert!(d.plane().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn test_and_set_keeps_nearest() {
        let mut d = DepthMap::far(2, 2);
        assert!(d.test_and_set(0, 0, 0.5));
        assert!(!d.test_and_set(0, 0, 0.7));
        assert!(d.test_and_set(0, 0, 0.2));
        assert_eq!(d.get(0, 0), 0.2);
    }

    #[test]
    fn values_are_clamped() {
        let mut d = DepthMap::far(1, 1);
        d.set(0, 0, -3.0);
        assert_eq!(d.get(0, 0), 0.0);
        d.set(0, 0, 7.0);
        assert_eq!(d.get(0, 0), 1.0);
    }

    #[test]
    fn histogram_counts_all_pixels() {
        let d = DepthMap::from_fn(10, 10, |x, _| x as f32 / 10.0);
        let h = d.histogram(10);
        assert_eq!(h.iter().sum::<usize>(), 100);
        // column x contributes depth x/10, landing in bin x
        assert!(h.iter().all(|&c| c == 10));
    }

    #[test]
    fn histogram_puts_one_in_last_bin() {
        let d = DepthMap::far(2, 2);
        let h = d.histogram(4);
        assert_eq!(h[3], 4);
    }

    #[test]
    fn nearness_inverts() {
        let d = DepthMap::from_fn(2, 1, |x, _| x as f32);
        let n = d.nearness();
        assert_eq!(n.get(0, 0), 1.0);
        assert_eq!(n.get(1, 0), 0.0);
    }

    #[test]
    fn mean_in_region() {
        let d = DepthMap::from_fn(4, 4, |x, _| if x < 2 { 0.0 } else { 1.0 });
        assert_eq!(d.mean_in(Rect::new(0, 0, 2, 4)), 0.0);
        assert_eq!(d.mean_in(Rect::new(2, 0, 2, 4)), 1.0);
    }
}
