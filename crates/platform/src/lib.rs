//! Analytical timing and energy models of the paper's hardware.
//!
//! The paper measures two real phones (Samsung Galaxy Tab S8 with a
//! Snapdragon 8 Gen 1, Google Pixel 7 Pro with a Tensor G2) and a desktop
//! streaming server. We cannot run on that hardware, so this crate supplies
//! calibrated analytical models instead (see `DESIGN.md`): each device
//! profile carries component latency curves and power rails whose constants
//! are anchored to the paper's published measurements:
//!
//! * full-frame EDSR ×2 upscaling of a 720p frame on the NPU: ≈217 ms
//!   (S8 Tab) and ≈233 ms (Pixel 7 Pro) — the 4.6/4.3 FPS of Fig. 10a;
//! * a 300×300 RoI in ≈16.2 ms / ≈16.4 ms — the paper's §IV-C example and
//!   Fig. 10c;
//! * hardware-accelerated bilinear upscaling of the non-RoI region in
//!   ≈1.4 ms on the GPU;
//! * software (libvpx-class) decode ≈46% of the baseline's energy versus
//!   ≈6% for the hardware decoder path;
//! * the server's GPU utilization drop from 79% to 52% when rendering
//!   720p instead of 1440p (§IV-B2).
//!
//! Everything downstream (sessions, MTP latency, energy savings) is
//! *computed* by composing these models over real pipeline activity — no
//! result is hard-coded.
//!
//! ```
//! use gss_platform::DeviceProfile;
//!
//! let s8 = DeviceProfile::s8_tab();
//! let full = s8.npu_sr_ms(1280 * 720);
//! let roi = s8.npu_sr_ms(300 * 300);
//! assert!(full / roi > 12.0); // the paper's 13x headline comes from here
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod energy;
pub mod plane_ops;
pub mod pool;
mod server;

pub use device::{
    CodecProfile, DeviceCapabilities, DeviceProfile, FOVEAL_DIAMETER_INCHES, REALTIME_BUDGET_MS,
};
pub use energy::{EnergyBreakdown, EnergyMeter, Rail, Stage};
pub use server::ServerModel;
