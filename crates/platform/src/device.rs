//! Client device profiles: latency curves and power rails.

use serde::{Deserialize, Serialize};

/// The 60 FPS frame budget in milliseconds (16.66 ms), the paper's
/// real-time bar. Re-exported from `gss-telemetry`, which owns the
/// canonical definition (the recorder, session simulator and SLO engine
/// all judge frames against the same constant).
pub use gss_telemetry::REALTIME_BUDGET_MS;

/// Foveal visual diameter on screen at a typical 30 cm mobile viewing
/// distance: `2 · 30 cm · tan(3°) ≈ 3.14 cm ≈ 1.25 in` (paper §IV-B1).
pub const FOVEAL_DIAMETER_INCHES: f64 = 1.25;

/// Codec profiles a client decoder can expose in the session-start
/// handshake, ordered weakest to strongest — `Ord` lets negotiation take
/// the `min` of the offered and supported profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CodecProfile {
    /// Constrained baseline: every decoder supports it.
    Baseline,
    /// Main profile.
    Main,
    /// High profile (the server's default offer).
    High,
}

impl CodecProfile {
    /// Kebab-case label for logs and reports.
    pub fn label(self) -> &'static str {
        match self {
            CodecProfile::Baseline => "baseline",
            CodecProfile::Main => "main",
            CodecProfile::High => "high",
        }
    }
}

/// The capability set a client advertises at session start, exchanged in
/// the `GameStreamServer`/`GameStreamClient` handshake so the server never
/// sends a stream the client cannot decode or upscale.
///
/// The fields map onto the negotiation dimensions:
/// - `max_decode_pixels` caps the coded resolution the hardware decoder
///   sustains at 60 FPS — the server's offered decode resolution is
///   clamped to it.
/// - `codec_profile` is the strongest profile the decoder implements; the
///   session streams `min(offered, supported)`.
/// - `max_sr_cost_ratio` bounds which SR model tiers the NPU can run: a
///   tier is supported iff its EDSR-relative per-pixel cost is at or below
///   this ratio, which clamps the degradation ladder's best rung.
/// - `thermal_envelope_w` is the sustained power budget before the SoC
///   throttles (informational in the timing model; throttle behaviour is
///   scripted via fault plans).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceCapabilities {
    /// Largest coded frame (pixels) the hardware decoder sustains in
    /// real time.
    pub max_decode_pixels: usize,
    /// Strongest codec profile the decoder implements.
    pub codec_profile: CodecProfile,
    /// Largest EDSR-relative SR model cost the NPU can host (1.0 admits
    /// the full EDSR-64 tier).
    pub max_sr_cost_ratio: f64,
    /// Sustained power envelope before thermal throttling, watts.
    pub thermal_envelope_w: f64,
}

impl DeviceCapabilities {
    /// A flagship capability set that constrains nothing the reference
    /// devices do: 4K decode, High profile, every SR tier.
    pub fn flagship() -> Self {
        DeviceCapabilities {
            max_decode_pixels: 3840 * 2160,
            codec_profile: CodecProfile::High,
            max_sr_cost_ratio: 1.0,
            thermal_envelope_w: 12.0,
        }
    }

    /// Whether an SR model with the given EDSR-relative cost ratio fits
    /// this client's NPU (small epsilon so a tier sitting exactly on the
    /// bound is admitted despite float noise).
    pub fn supports_cost_ratio(&self, cost_ratio: f64) -> bool {
        cost_ratio <= self.max_sr_cost_ratio + 1e-12
    }
}

/// A mobile client's calibrated performance/power model.
///
/// Construct via [`DeviceProfile::s8_tab`] / [`DeviceProfile::pixel7_pro`],
/// the synthetic [`DeviceProfile::matrix`] tiers, or build a custom
/// profile for what-if studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Marketing name.
    pub name: &'static str,
    /// Display pixel density (pixels per inch).
    pub ppi: f64,
    /// NPU latency anchor: full 720p-input EDSR ×2 pass, in ms.
    pub npu_full_frame_ms: f64,
    /// NPU latency exponent: `t(px) = anchor · (px / 921600)^alpha`.
    /// Slightly superlinear (feature maps spill out of on-chip memory as
    /// inputs grow), fitted to the paper's two published latency points.
    pub npu_alpha: f64,
    /// GPU hardware bilinear upscaling throughput, ms per output megapixel.
    pub gpu_bilinear_ms_per_mpx: f64,
    /// CPU (single-thread) bilinear interpolation, ms per output megapixel —
    /// NEMO's motion-vector/residual upscaling path.
    pub cpu_bilinear_ms_per_mpx: f64,
    /// CPU frame reconstruction (prediction + residual add), ms per
    /// megapixel.
    pub cpu_reconstruct_ms_per_mpx: f64,
    /// Software (libvpx-class) decode, ms per coded megapixel.
    pub sw_decode_ms_per_mpx: f64,
    /// Hardware decoder, ms per coded megapixel.
    pub hw_decode_ms_per_mpx: f64,
    /// Display present latency (composition + mean vsync wait), ms.
    pub display_present_ms: f64,
    /// NPU active power, watts.
    pub npu_w: f64,
    /// GPU active power, watts.
    pub gpu_w: f64,
    /// CPU power with the decoder's multi-threaded load, watts.
    pub cpu_heavy_w: f64,
    /// CPU power for a single busy thread, watts.
    pub cpu_light_w: f64,
    /// Hardware video decoder power, watts.
    pub hw_decoder_w: f64,
    /// Front-camera power while eye-tracking, watts (the paper's §III-A
    /// measures +2.8 W on a Pixel 7 Pro).
    pub camera_w: f64,
    /// Radio energy per received byte, microjoules.
    pub net_uj_per_byte: f64,
    /// Display-pipeline energy per presented frame, millijoules (panel
    /// timing controller + composition; scales with panel area).
    pub display_mj_per_frame: f64,
    /// Capability set advertised in the session-start handshake.
    pub capabilities: DeviceCapabilities,
}

impl DeviceProfile {
    /// Samsung Galaxy Tab S8 (Snapdragon 8 Gen 1, Hexagon NPU, 274 PPI
    /// 2K display).
    pub fn s8_tab() -> Self {
        DeviceProfile {
            name: "Samsung Galaxy Tab S8",
            ppi: 274.0,
            npu_full_frame_ms: 217.0,
            // ln(217/16.2) / ln(921600/90000)
            npu_alpha: 1.1155,
            gpu_bilinear_ms_per_mpx: 0.42,
            cpu_bilinear_ms_per_mpx: 5.5,
            cpu_reconstruct_ms_per_mpx: 1.5,
            sw_decode_ms_per_mpx: 20.6,
            hw_decode_ms_per_mpx: 5.4,
            display_present_ms: 7.0,
            npu_w: 4.0,
            gpu_w: 3.0,
            cpu_heavy_w: 3.0,
            cpu_light_w: 1.7,
            hw_decoder_w: 1.0,
            camera_w: 2.8,
            net_uj_per_byte: 0.05,
            // the Tab's much larger 120 Hz panel drives a heavier display
            // pipeline, which is why its relative savings are lower (Fig. 11)
            display_mj_per_frame: 36.0,
            capabilities: DeviceCapabilities::flagship(),
        }
    }

    /// Google Pixel 7 Pro (Tensor G2, edge TPU, 512 PPI QHD+ display).
    pub fn pixel7_pro() -> Self {
        DeviceProfile {
            name: "Google Pixel 7 Pro",
            ppi: 512.0,
            npu_full_frame_ms: 233.0,
            // ln(233/16.4) / ln(921600/90000)
            npu_alpha: 1.1410,
            gpu_bilinear_ms_per_mpx: 0.42,
            cpu_bilinear_ms_per_mpx: 5.5,
            cpu_reconstruct_ms_per_mpx: 1.5,
            sw_decode_ms_per_mpx: 20.6,
            hw_decode_ms_per_mpx: 5.4,
            display_present_ms: 7.0,
            npu_w: 4.0,
            gpu_w: 3.0,
            cpu_heavy_w: 3.0,
            cpu_light_w: 1.7,
            hw_decoder_w: 1.0,
            camera_w: 2.8,
            net_uj_per_byte: 0.05,
            display_mj_per_frame: 2.5,
            capabilities: DeviceCapabilities {
                thermal_envelope_w: 10.0,
                ..DeviceCapabilities::flagship()
            },
        }
    }

    /// A synthetic entry-level client: a weak NPU that cannot host the
    /// heavy EDSR tiers, a 720p-bound baseline-profile decoder and a tight
    /// thermal envelope. Capability negotiation clamps its sessions to the
    /// lightweight ladder rungs.
    pub fn tier_low() -> Self {
        DeviceProfile {
            name: "Entry Tier (low NPU)",
            ppi: 267.0,
            npu_full_frame_ms: 520.0,
            npu_alpha: 1.12,
            gpu_bilinear_ms_per_mpx: 0.9,
            cpu_bilinear_ms_per_mpx: 8.0,
            cpu_reconstruct_ms_per_mpx: 2.2,
            sw_decode_ms_per_mpx: 28.0,
            hw_decode_ms_per_mpx: 7.5,
            display_present_ms: 8.0,
            npu_w: 2.5,
            gpu_w: 2.0,
            cpu_heavy_w: 2.5,
            cpu_light_w: 1.4,
            hw_decoder_w: 0.8,
            camera_w: 2.2,
            net_uj_per_byte: 0.06,
            display_mj_per_frame: 4.0,
            capabilities: DeviceCapabilities {
                max_decode_pixels: 1280 * 720,
                codec_profile: CodecProfile::Baseline,
                // admits EDSR-16 (~0.064) and FSRCNN (~0.012), not EDSR-64
                max_sr_cost_ratio: 0.1,
                thermal_envelope_w: 6.0,
            },
        }
    }

    /// A synthetic mid-range client: between the entry tier and the
    /// calibrated flagships, every SR tier admitted.
    pub fn tier_mid() -> Self {
        DeviceProfile {
            name: "Mid Tier",
            ppi: 400.0,
            npu_full_frame_ms: 310.0,
            npu_alpha: 1.13,
            gpu_bilinear_ms_per_mpx: 0.55,
            cpu_bilinear_ms_per_mpx: 6.2,
            cpu_reconstruct_ms_per_mpx: 1.8,
            sw_decode_ms_per_mpx: 23.0,
            hw_decode_ms_per_mpx: 6.0,
            display_present_ms: 7.5,
            npu_w: 3.2,
            gpu_w: 2.5,
            cpu_heavy_w: 2.8,
            cpu_light_w: 1.6,
            hw_decoder_w: 0.9,
            camera_w: 2.5,
            net_uj_per_byte: 0.055,
            display_mj_per_frame: 3.0,
            capabilities: DeviceCapabilities {
                max_decode_pixels: 2560 * 1440,
                codec_profile: CodecProfile::Main,
                max_sr_cost_ratio: 1.0,
                thermal_envelope_w: 8.0,
            },
        }
    }

    /// A synthetic next-generation flagship: a faster NPU than either
    /// calibrated reference device, nothing constrained.
    pub fn tier_high() -> Self {
        DeviceProfile {
            name: "Flagship Tier (high NPU)",
            ppi: 512.0,
            npu_full_frame_ms: 150.0,
            npu_alpha: 1.13,
            gpu_bilinear_ms_per_mpx: 0.35,
            cpu_bilinear_ms_per_mpx: 4.8,
            cpu_reconstruct_ms_per_mpx: 1.3,
            sw_decode_ms_per_mpx: 18.0,
            hw_decode_ms_per_mpx: 4.5,
            display_present_ms: 6.5,
            npu_w: 4.5,
            gpu_w: 3.2,
            cpu_heavy_w: 3.2,
            cpu_light_w: 1.8,
            hw_decoder_w: 1.1,
            camera_w: 2.8,
            net_uj_per_byte: 0.045,
            display_mj_per_frame: 2.2,
            capabilities: DeviceCapabilities::flagship(),
        }
    }

    /// Both reference devices (the paper's Table I hardware). Kept to the
    /// calibrated pair on purpose — the paper-anchor tests iterate it; the
    /// synthetic tiers live in [`DeviceProfile::matrix`].
    pub fn all() -> Vec<DeviceProfile> {
        vec![DeviceProfile::s8_tab(), DeviceProfile::pixel7_pro()]
    }

    /// The full device matrix the recovery/robustness experiments sweep:
    /// both calibrated reference devices plus the synthetic low/mid/high
    /// NPU tiers.
    pub fn matrix() -> Vec<DeviceProfile> {
        vec![
            DeviceProfile::s8_tab(),
            DeviceProfile::pixel7_pro(),
            DeviceProfile::tier_low(),
            DeviceProfile::tier_mid(),
            DeviceProfile::tier_high(),
        ]
    }

    /// NPU latency in ms for a DNN-SR pass over `input_pixels` (×2 scale).
    pub fn npu_sr_ms(&self, input_pixels: usize) -> f64 {
        const FULL: f64 = 1280.0 * 720.0;
        self.npu_full_frame_ms * (input_pixels as f64 / FULL).powf(self.npu_alpha)
    }

    /// The side of the largest square RoI the NPU can upscale within
    /// `budget_ms` — the paper's step-0 device calibration (§IV-B1),
    /// rounded down to a multiple of 4.
    pub fn max_realtime_roi_side(&self, budget_ms: f64) -> usize {
        const FULL: f64 = 1280.0 * 720.0;
        if budget_ms <= 0.0 {
            return 0;
        }
        let pixels = FULL * (budget_ms / self.npu_full_frame_ms).powf(1.0 / self.npu_alpha);
        let side = pixels.max(0.0).sqrt() as usize;
        side - side % 4
    }

    /// NPU latency for an SR model whose per-pixel MAC cost is
    /// `cost_ratio` times the calibrated EDSR-16/64's (the paper's design
    /// is model-agnostic; step-0 benchmarks "the SR model of the user's
    /// choice").
    ///
    /// # Panics
    ///
    /// Panics when `cost_ratio` is not positive.
    pub fn npu_sr_ms_for_model(&self, input_pixels: usize, cost_ratio: f64) -> f64 {
        assert!(cost_ratio > 0.0, "cost ratio must be positive");
        self.npu_sr_ms(input_pixels) * cost_ratio
    }

    /// The largest square RoI a model with the given EDSR-relative cost
    /// ratio can upscale within `budget_ms`.
    ///
    /// # Panics
    ///
    /// Panics when `cost_ratio` is not positive.
    pub fn max_realtime_roi_side_for_model(&self, budget_ms: f64, cost_ratio: f64) -> usize {
        assert!(cost_ratio > 0.0, "cost ratio must be positive");
        self.max_realtime_roi_side(budget_ms / cost_ratio)
    }

    /// NPU latency for a model under a thermal `slowdown` factor (1.0 =
    /// nominal clocks; a throttled NPU runs every pass `slowdown` times
    /// longer).
    ///
    /// # Panics
    ///
    /// Panics when `cost_ratio` is not positive or `slowdown` is below 1.
    pub fn npu_sr_ms_throttled(&self, input_pixels: usize, cost_ratio: f64, slowdown: f64) -> f64 {
        assert!(slowdown >= 1.0, "slowdown must be at least 1");
        self.npu_sr_ms_for_model(input_pixels, cost_ratio) * slowdown
    }

    /// The largest square RoI a model can upscale within `budget_ms` while
    /// the NPU is throttled by `slowdown`.
    ///
    /// # Panics
    ///
    /// Panics when `cost_ratio` is not positive or `slowdown` is below 1.
    pub fn max_realtime_roi_side_throttled(
        &self,
        budget_ms: f64,
        cost_ratio: f64,
        slowdown: f64,
    ) -> usize {
        assert!(slowdown >= 1.0, "slowdown must be at least 1");
        self.max_realtime_roi_side_for_model(budget_ms / slowdown, cost_ratio)
    }

    /// Minimum desired RoI side on the low-resolution frame from human
    /// visual physiology: `ppi · foveal diameter / scale_factor`
    /// (paper Fig. 7b).
    ///
    /// # Panics
    ///
    /// Panics when `scale_factor` is zero.
    pub fn foveal_roi_side(&self, scale_factor: usize) -> usize {
        assert!(scale_factor > 0, "scale factor must be nonzero");
        (self.ppi * FOVEAL_DIAMETER_INCHES / scale_factor as f64).round() as usize
    }

    /// GPU hardware bilinear upscaling latency for `output_pixels`.
    pub fn gpu_bilinear_ms(&self, output_pixels: usize) -> f64 {
        self.gpu_bilinear_ms_per_mpx * output_pixels as f64 / 1e6
    }

    /// CPU bilinear interpolation latency for `output_pixels`.
    pub fn cpu_bilinear_ms(&self, output_pixels: usize) -> f64 {
        self.cpu_bilinear_ms_per_mpx * output_pixels as f64 / 1e6
    }

    /// CPU frame-reconstruction latency for `pixels`.
    pub fn cpu_reconstruct_ms(&self, pixels: usize) -> f64 {
        self.cpu_reconstruct_ms_per_mpx * pixels as f64 / 1e6
    }

    /// Software-decoder latency for a coded frame of `pixels`.
    pub fn sw_decode_ms(&self, pixels: usize) -> f64 {
        self.sw_decode_ms_per_mpx * pixels as f64 / 1e6
    }

    /// Hardware-decoder latency for a coded frame of `pixels`.
    pub fn hw_decode_ms(&self, pixels: usize) -> f64 {
        self.hw_decode_ms_per_mpx * pixels as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s8_anchors_reproduce_paper_numbers() {
        let d = DeviceProfile::s8_tab();
        // full 720p frame ≈ 217 ms (4.6 FPS, Fig. 10a)
        assert!((d.npu_sr_ms(1280 * 720) - 217.0).abs() < 0.5);
        // 300x300 RoI ≈ 16.2 ms (§IV-C)
        let roi = d.npu_sr_ms(300 * 300);
        assert!((roi - 16.2).abs() < 0.3, "roi {roi:.2}");
        // 13x reference-frame speedup
        let speedup = d.npu_sr_ms(1280 * 720) / roi;
        assert!(speedup > 13.0 && speedup < 14.0, "speedup {speedup:.2}");
    }

    #[test]
    fn pixel_anchors_reproduce_paper_numbers() {
        let d = DeviceProfile::pixel7_pro();
        assert!((d.npu_sr_ms(1280 * 720) - 233.0).abs() < 0.5);
        let roi = d.npu_sr_ms(300 * 300);
        assert!((roi - 16.4).abs() < 0.3, "roi {roi:.2}");
        let speedup = d.npu_sr_ms(1280 * 720) / roi;
        assert!(speedup > 13.5 && speedup < 14.7, "speedup {speedup:.2}");
    }

    #[test]
    fn max_realtime_roi_is_around_300_on_s8() {
        let d = DeviceProfile::s8_tab();
        let side = d.max_realtime_roi_side(REALTIME_BUDGET_MS);
        assert!(
            (296..=312).contains(&side),
            "side {side} (paper benchmarks ≈300)"
        );
        // the returned window must actually fit the budget
        assert!(d.npu_sr_ms(side * side) <= REALTIME_BUDGET_MS);
        assert_eq!(side % 4, 0);
    }

    #[test]
    fn max_realtime_roi_zero_budget() {
        assert_eq!(DeviceProfile::s8_tab().max_realtime_roi_side(0.0), 0);
    }

    #[test]
    fn foveal_roi_matches_paper_example() {
        // S8 Tab: 1.25 in × 274 ppi ≈ 343 px on screen → ≈172 on the 720p frame
        let d = DeviceProfile::s8_tab();
        assert_eq!(d.foveal_roi_side(2), 171);
        let on_screen = d.foveal_roi_side(1);
        assert!((342..=343).contains(&on_screen), "{on_screen}");
    }

    #[test]
    fn pixel_foveal_exceeds_its_compute_budget() {
        // the Pixel's dense display wants a bigger foveal window than its
        // NPU can serve in real time — the sizer must clamp (§IV-B1)
        let d = DeviceProfile::pixel7_pro();
        assert!(d.foveal_roi_side(2) > d.max_realtime_roi_side(REALTIME_BUDGET_MS));
    }

    #[test]
    fn npu_latency_is_monotone_in_pixels() {
        let d = DeviceProfile::s8_tab();
        let mut prev = 0.0;
        for side in [100usize, 200, 300, 400, 600, 900] {
            let t = d.npu_sr_ms(side * side);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn nonroi_gpu_bilinear_near_paper_value() {
        // 1440p output minus the 600x600 upscaled RoI ≈ 3.33 Mpx → ≈1.4 ms
        let d = DeviceProfile::s8_tab();
        let px = 2560 * 1440 - 600 * 600;
        let t = d.gpu_bilinear_ms(px);
        assert!((t - 1.4).abs() < 0.1, "{t:.2}");
    }

    #[test]
    fn sw_decode_slower_than_hw_decode() {
        let d = DeviceProfile::pixel7_pro();
        let px = 1280 * 720;
        assert!(d.sw_decode_ms(px) > 3.0 * d.hw_decode_ms(px));
    }

    #[test]
    fn cheaper_models_afford_larger_roi_windows() {
        let d = DeviceProfile::s8_tab();
        let edsr_side = d.max_realtime_roi_side_for_model(REALTIME_BUDGET_MS, 1.0);
        let cheap_side = d.max_realtime_roi_side_for_model(REALTIME_BUDGET_MS, 0.1);
        assert_eq!(edsr_side, d.max_realtime_roi_side(REALTIME_BUDGET_MS));
        assert!(cheap_side > edsr_side * 2, "{cheap_side} vs {edsr_side}");
        // and the chosen windows actually meet the budget under their model
        assert!(d.npu_sr_ms_for_model(cheap_side * cheap_side, 0.1) <= REALTIME_BUDGET_MS);
    }

    #[test]
    fn throttled_npu_shrinks_the_realtime_window() {
        let d = DeviceProfile::s8_tab();
        let nominal = d.max_realtime_roi_side_throttled(REALTIME_BUDGET_MS, 1.0, 1.0);
        assert_eq!(nominal, d.max_realtime_roi_side(REALTIME_BUDGET_MS));
        let throttled = d.max_realtime_roi_side_throttled(REALTIME_BUDGET_MS, 1.0, 3.0);
        assert!(throttled < nominal, "{throttled} vs {nominal}");
        // the shrunken window still fits the budget at throttled clocks
        assert!(d.npu_sr_ms_throttled(throttled * throttled, 1.0, 3.0) <= REALTIME_BUDGET_MS);
        // timing scales exactly linearly with the slowdown
        let base = d.npu_sr_ms_for_model(300 * 300, 1.0);
        assert!((d.npu_sr_ms_throttled(300 * 300, 1.0, 2.5) - base * 2.5).abs() < 1e-9);
    }

    #[test]
    fn the_matrix_extends_the_reference_pair_with_ordered_npu_tiers() {
        let matrix = DeviceProfile::matrix();
        assert_eq!(matrix.len(), 5);
        assert_eq!(&matrix[..2], &DeviceProfile::all()[..]);
        let names: std::collections::HashSet<&str> = matrix.iter().map(|d| d.name).collect();
        assert_eq!(names.len(), 5, "device names must be unique");
        // NPU tiers are ordered: low is slower than every reference
        // device, high is faster than both
        let px = 300 * 300;
        let low = DeviceProfile::tier_low().npu_sr_ms(px);
        let high = DeviceProfile::tier_high().npu_sr_ms(px);
        for d in DeviceProfile::all() {
            let t = d.npu_sr_ms(px);
            assert!(low > t, "{} not slower than {}", low, t);
            assert!(high < t, "{} not faster than {}", high, t);
        }
    }

    #[test]
    fn capability_sets_follow_the_tiers() {
        let low = DeviceProfile::tier_low().capabilities;
        let mid = DeviceProfile::tier_mid().capabilities;
        let high = DeviceProfile::tier_high().capabilities;
        assert!(low.max_decode_pixels < mid.max_decode_pixels);
        assert!(mid.max_decode_pixels < high.max_decode_pixels);
        assert!(low.codec_profile < mid.codec_profile);
        assert!(mid.codec_profile < high.codec_profile);
        assert!(low.thermal_envelope_w < high.thermal_envelope_w);
        // the entry tier rejects the heavy EDSR-64 tier but admits the
        // light models; the others admit everything
        assert!(!low.supports_cost_ratio(1.0));
        assert!(low.supports_cost_ratio(0.064));
        assert!(low.supports_cost_ratio(0.013));
        assert!(mid.supports_cost_ratio(1.0));
        assert!(high.supports_cost_ratio(1.0));
        // reference devices constrain nothing (their sessions predate the
        // handshake and must stay byte-identical)
        for d in DeviceProfile::all() {
            assert!(d.capabilities.supports_cost_ratio(1.0));
            assert!(d.capabilities.max_decode_pixels >= 2560 * 1440);
            assert_eq!(d.capabilities.codec_profile, CodecProfile::High);
        }
    }

    #[test]
    fn codec_profiles_order_weakest_to_strongest() {
        assert!(CodecProfile::Baseline < CodecProfile::Main);
        assert!(CodecProfile::Main < CodecProfile::High);
        assert_eq!(
            CodecProfile::High.min(CodecProfile::Baseline),
            CodecProfile::Baseline
        );
        let labels: std::collections::HashSet<&str> = [
            CodecProfile::Baseline,
            CodecProfile::Main,
            CodecProfile::High,
        ]
        .iter()
        .map(|p| p.label())
        .collect();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn nemo_nonref_cpu_path_violates_realtime() {
        // bilinear residual upscale + reconstruction at 1440p on the CPU
        let d = DeviceProfile::s8_tab();
        let hr = 2560 * 1440;
        let t = d.cpu_bilinear_ms(hr) + d.cpu_reconstruct_ms(hr);
        assert!(t > REALTIME_BUDGET_MS, "{t:.2}");
        assert!(t < 30.0, "{t:.2}");
    }
}
