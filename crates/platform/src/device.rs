//! Client device profiles: latency curves and power rails.

use serde::{Deserialize, Serialize};

/// The 60 FPS frame budget in milliseconds (16.66 ms), the paper's
/// real-time bar. Re-exported from `gss-telemetry`, which owns the
/// canonical definition (the recorder, session simulator and SLO engine
/// all judge frames against the same constant).
pub use gss_telemetry::REALTIME_BUDGET_MS;

/// Foveal visual diameter on screen at a typical 30 cm mobile viewing
/// distance: `2 · 30 cm · tan(3°) ≈ 3.14 cm ≈ 1.25 in` (paper §IV-B1).
pub const FOVEAL_DIAMETER_INCHES: f64 = 1.25;

/// A mobile client's calibrated performance/power model.
///
/// Construct via [`DeviceProfile::s8_tab`] / [`DeviceProfile::pixel7_pro`],
/// or build a custom profile for what-if studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Marketing name.
    pub name: &'static str,
    /// Display pixel density (pixels per inch).
    pub ppi: f64,
    /// NPU latency anchor: full 720p-input EDSR ×2 pass, in ms.
    pub npu_full_frame_ms: f64,
    /// NPU latency exponent: `t(px) = anchor · (px / 921600)^alpha`.
    /// Slightly superlinear (feature maps spill out of on-chip memory as
    /// inputs grow), fitted to the paper's two published latency points.
    pub npu_alpha: f64,
    /// GPU hardware bilinear upscaling throughput, ms per output megapixel.
    pub gpu_bilinear_ms_per_mpx: f64,
    /// CPU (single-thread) bilinear interpolation, ms per output megapixel —
    /// NEMO's motion-vector/residual upscaling path.
    pub cpu_bilinear_ms_per_mpx: f64,
    /// CPU frame reconstruction (prediction + residual add), ms per
    /// megapixel.
    pub cpu_reconstruct_ms_per_mpx: f64,
    /// Software (libvpx-class) decode, ms per coded megapixel.
    pub sw_decode_ms_per_mpx: f64,
    /// Hardware decoder, ms per coded megapixel.
    pub hw_decode_ms_per_mpx: f64,
    /// Display present latency (composition + mean vsync wait), ms.
    pub display_present_ms: f64,
    /// NPU active power, watts.
    pub npu_w: f64,
    /// GPU active power, watts.
    pub gpu_w: f64,
    /// CPU power with the decoder's multi-threaded load, watts.
    pub cpu_heavy_w: f64,
    /// CPU power for a single busy thread, watts.
    pub cpu_light_w: f64,
    /// Hardware video decoder power, watts.
    pub hw_decoder_w: f64,
    /// Front-camera power while eye-tracking, watts (the paper's §III-A
    /// measures +2.8 W on a Pixel 7 Pro).
    pub camera_w: f64,
    /// Radio energy per received byte, microjoules.
    pub net_uj_per_byte: f64,
    /// Display-pipeline energy per presented frame, millijoules (panel
    /// timing controller + composition; scales with panel area).
    pub display_mj_per_frame: f64,
}

impl DeviceProfile {
    /// Samsung Galaxy Tab S8 (Snapdragon 8 Gen 1, Hexagon NPU, 274 PPI
    /// 2K display).
    pub fn s8_tab() -> Self {
        DeviceProfile {
            name: "Samsung Galaxy Tab S8",
            ppi: 274.0,
            npu_full_frame_ms: 217.0,
            // ln(217/16.2) / ln(921600/90000)
            npu_alpha: 1.1155,
            gpu_bilinear_ms_per_mpx: 0.42,
            cpu_bilinear_ms_per_mpx: 5.5,
            cpu_reconstruct_ms_per_mpx: 1.5,
            sw_decode_ms_per_mpx: 20.6,
            hw_decode_ms_per_mpx: 5.4,
            display_present_ms: 7.0,
            npu_w: 4.0,
            gpu_w: 3.0,
            cpu_heavy_w: 3.0,
            cpu_light_w: 1.7,
            hw_decoder_w: 1.0,
            camera_w: 2.8,
            net_uj_per_byte: 0.05,
            // the Tab's much larger 120 Hz panel drives a heavier display
            // pipeline, which is why its relative savings are lower (Fig. 11)
            display_mj_per_frame: 36.0,
        }
    }

    /// Google Pixel 7 Pro (Tensor G2, edge TPU, 512 PPI QHD+ display).
    pub fn pixel7_pro() -> Self {
        DeviceProfile {
            name: "Google Pixel 7 Pro",
            ppi: 512.0,
            npu_full_frame_ms: 233.0,
            // ln(233/16.4) / ln(921600/90000)
            npu_alpha: 1.1410,
            gpu_bilinear_ms_per_mpx: 0.42,
            cpu_bilinear_ms_per_mpx: 5.5,
            cpu_reconstruct_ms_per_mpx: 1.5,
            sw_decode_ms_per_mpx: 20.6,
            hw_decode_ms_per_mpx: 5.4,
            display_present_ms: 7.0,
            npu_w: 4.0,
            gpu_w: 3.0,
            cpu_heavy_w: 3.0,
            cpu_light_w: 1.7,
            hw_decoder_w: 1.0,
            camera_w: 2.8,
            net_uj_per_byte: 0.05,
            display_mj_per_frame: 2.5,
        }
    }

    /// Both reference devices.
    pub fn all() -> Vec<DeviceProfile> {
        vec![DeviceProfile::s8_tab(), DeviceProfile::pixel7_pro()]
    }

    /// NPU latency in ms for a DNN-SR pass over `input_pixels` (×2 scale).
    pub fn npu_sr_ms(&self, input_pixels: usize) -> f64 {
        const FULL: f64 = 1280.0 * 720.0;
        self.npu_full_frame_ms * (input_pixels as f64 / FULL).powf(self.npu_alpha)
    }

    /// The side of the largest square RoI the NPU can upscale within
    /// `budget_ms` — the paper's step-0 device calibration (§IV-B1),
    /// rounded down to a multiple of 4.
    pub fn max_realtime_roi_side(&self, budget_ms: f64) -> usize {
        const FULL: f64 = 1280.0 * 720.0;
        if budget_ms <= 0.0 {
            return 0;
        }
        let pixels = FULL * (budget_ms / self.npu_full_frame_ms).powf(1.0 / self.npu_alpha);
        let side = pixels.max(0.0).sqrt() as usize;
        side - side % 4
    }

    /// NPU latency for an SR model whose per-pixel MAC cost is
    /// `cost_ratio` times the calibrated EDSR-16/64's (the paper's design
    /// is model-agnostic; step-0 benchmarks "the SR model of the user's
    /// choice").
    ///
    /// # Panics
    ///
    /// Panics when `cost_ratio` is not positive.
    pub fn npu_sr_ms_for_model(&self, input_pixels: usize, cost_ratio: f64) -> f64 {
        assert!(cost_ratio > 0.0, "cost ratio must be positive");
        self.npu_sr_ms(input_pixels) * cost_ratio
    }

    /// The largest square RoI a model with the given EDSR-relative cost
    /// ratio can upscale within `budget_ms`.
    ///
    /// # Panics
    ///
    /// Panics when `cost_ratio` is not positive.
    pub fn max_realtime_roi_side_for_model(&self, budget_ms: f64, cost_ratio: f64) -> usize {
        assert!(cost_ratio > 0.0, "cost ratio must be positive");
        self.max_realtime_roi_side(budget_ms / cost_ratio)
    }

    /// NPU latency for a model under a thermal `slowdown` factor (1.0 =
    /// nominal clocks; a throttled NPU runs every pass `slowdown` times
    /// longer).
    ///
    /// # Panics
    ///
    /// Panics when `cost_ratio` is not positive or `slowdown` is below 1.
    pub fn npu_sr_ms_throttled(&self, input_pixels: usize, cost_ratio: f64, slowdown: f64) -> f64 {
        assert!(slowdown >= 1.0, "slowdown must be at least 1");
        self.npu_sr_ms_for_model(input_pixels, cost_ratio) * slowdown
    }

    /// The largest square RoI a model can upscale within `budget_ms` while
    /// the NPU is throttled by `slowdown`.
    ///
    /// # Panics
    ///
    /// Panics when `cost_ratio` is not positive or `slowdown` is below 1.
    pub fn max_realtime_roi_side_throttled(
        &self,
        budget_ms: f64,
        cost_ratio: f64,
        slowdown: f64,
    ) -> usize {
        assert!(slowdown >= 1.0, "slowdown must be at least 1");
        self.max_realtime_roi_side_for_model(budget_ms / slowdown, cost_ratio)
    }

    /// Minimum desired RoI side on the low-resolution frame from human
    /// visual physiology: `ppi · foveal diameter / scale_factor`
    /// (paper Fig. 7b).
    ///
    /// # Panics
    ///
    /// Panics when `scale_factor` is zero.
    pub fn foveal_roi_side(&self, scale_factor: usize) -> usize {
        assert!(scale_factor > 0, "scale factor must be nonzero");
        (self.ppi * FOVEAL_DIAMETER_INCHES / scale_factor as f64).round() as usize
    }

    /// GPU hardware bilinear upscaling latency for `output_pixels`.
    pub fn gpu_bilinear_ms(&self, output_pixels: usize) -> f64 {
        self.gpu_bilinear_ms_per_mpx * output_pixels as f64 / 1e6
    }

    /// CPU bilinear interpolation latency for `output_pixels`.
    pub fn cpu_bilinear_ms(&self, output_pixels: usize) -> f64 {
        self.cpu_bilinear_ms_per_mpx * output_pixels as f64 / 1e6
    }

    /// CPU frame-reconstruction latency for `pixels`.
    pub fn cpu_reconstruct_ms(&self, pixels: usize) -> f64 {
        self.cpu_reconstruct_ms_per_mpx * pixels as f64 / 1e6
    }

    /// Software-decoder latency for a coded frame of `pixels`.
    pub fn sw_decode_ms(&self, pixels: usize) -> f64 {
        self.sw_decode_ms_per_mpx * pixels as f64 / 1e6
    }

    /// Hardware-decoder latency for a coded frame of `pixels`.
    pub fn hw_decode_ms(&self, pixels: usize) -> f64 {
        self.hw_decode_ms_per_mpx * pixels as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s8_anchors_reproduce_paper_numbers() {
        let d = DeviceProfile::s8_tab();
        // full 720p frame ≈ 217 ms (4.6 FPS, Fig. 10a)
        assert!((d.npu_sr_ms(1280 * 720) - 217.0).abs() < 0.5);
        // 300x300 RoI ≈ 16.2 ms (§IV-C)
        let roi = d.npu_sr_ms(300 * 300);
        assert!((roi - 16.2).abs() < 0.3, "roi {roi:.2}");
        // 13x reference-frame speedup
        let speedup = d.npu_sr_ms(1280 * 720) / roi;
        assert!(speedup > 13.0 && speedup < 14.0, "speedup {speedup:.2}");
    }

    #[test]
    fn pixel_anchors_reproduce_paper_numbers() {
        let d = DeviceProfile::pixel7_pro();
        assert!((d.npu_sr_ms(1280 * 720) - 233.0).abs() < 0.5);
        let roi = d.npu_sr_ms(300 * 300);
        assert!((roi - 16.4).abs() < 0.3, "roi {roi:.2}");
        let speedup = d.npu_sr_ms(1280 * 720) / roi;
        assert!(speedup > 13.5 && speedup < 14.7, "speedup {speedup:.2}");
    }

    #[test]
    fn max_realtime_roi_is_around_300_on_s8() {
        let d = DeviceProfile::s8_tab();
        let side = d.max_realtime_roi_side(REALTIME_BUDGET_MS);
        assert!(
            (296..=312).contains(&side),
            "side {side} (paper benchmarks ≈300)"
        );
        // the returned window must actually fit the budget
        assert!(d.npu_sr_ms(side * side) <= REALTIME_BUDGET_MS);
        assert_eq!(side % 4, 0);
    }

    #[test]
    fn max_realtime_roi_zero_budget() {
        assert_eq!(DeviceProfile::s8_tab().max_realtime_roi_side(0.0), 0);
    }

    #[test]
    fn foveal_roi_matches_paper_example() {
        // S8 Tab: 1.25 in × 274 ppi ≈ 343 px on screen → ≈172 on the 720p frame
        let d = DeviceProfile::s8_tab();
        assert_eq!(d.foveal_roi_side(2), 171);
        let on_screen = d.foveal_roi_side(1);
        assert!((342..=343).contains(&on_screen), "{on_screen}");
    }

    #[test]
    fn pixel_foveal_exceeds_its_compute_budget() {
        // the Pixel's dense display wants a bigger foveal window than its
        // NPU can serve in real time — the sizer must clamp (§IV-B1)
        let d = DeviceProfile::pixel7_pro();
        assert!(d.foveal_roi_side(2) > d.max_realtime_roi_side(REALTIME_BUDGET_MS));
    }

    #[test]
    fn npu_latency_is_monotone_in_pixels() {
        let d = DeviceProfile::s8_tab();
        let mut prev = 0.0;
        for side in [100usize, 200, 300, 400, 600, 900] {
            let t = d.npu_sr_ms(side * side);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn nonroi_gpu_bilinear_near_paper_value() {
        // 1440p output minus the 600x600 upscaled RoI ≈ 3.33 Mpx → ≈1.4 ms
        let d = DeviceProfile::s8_tab();
        let px = 2560 * 1440 - 600 * 600;
        let t = d.gpu_bilinear_ms(px);
        assert!((t - 1.4).abs() < 0.1, "{t:.2}");
    }

    #[test]
    fn sw_decode_slower_than_hw_decode() {
        let d = DeviceProfile::pixel7_pro();
        let px = 1280 * 720;
        assert!(d.sw_decode_ms(px) > 3.0 * d.hw_decode_ms(px));
    }

    #[test]
    fn cheaper_models_afford_larger_roi_windows() {
        let d = DeviceProfile::s8_tab();
        let edsr_side = d.max_realtime_roi_side_for_model(REALTIME_BUDGET_MS, 1.0);
        let cheap_side = d.max_realtime_roi_side_for_model(REALTIME_BUDGET_MS, 0.1);
        assert_eq!(edsr_side, d.max_realtime_roi_side(REALTIME_BUDGET_MS));
        assert!(cheap_side > edsr_side * 2, "{cheap_side} vs {edsr_side}");
        // and the chosen windows actually meet the budget under their model
        assert!(d.npu_sr_ms_for_model(cheap_side * cheap_side, 0.1) <= REALTIME_BUDGET_MS);
    }

    #[test]
    fn throttled_npu_shrinks_the_realtime_window() {
        let d = DeviceProfile::s8_tab();
        let nominal = d.max_realtime_roi_side_throttled(REALTIME_BUDGET_MS, 1.0, 1.0);
        assert_eq!(nominal, d.max_realtime_roi_side(REALTIME_BUDGET_MS));
        let throttled = d.max_realtime_roi_side_throttled(REALTIME_BUDGET_MS, 1.0, 3.0);
        assert!(throttled < nominal, "{throttled} vs {nominal}");
        // the shrunken window still fits the budget at throttled clocks
        assert!(d.npu_sr_ms_throttled(throttled * throttled, 1.0, 3.0) <= REALTIME_BUDGET_MS);
        // timing scales exactly linearly with the slowdown
        let base = d.npu_sr_ms_for_model(300 * 300, 1.0);
        assert!((d.npu_sr_ms_throttled(300 * 300, 1.0, 2.5) - base * 2.5).abs() < 1e-9);
    }

    #[test]
    fn nemo_nonref_cpu_path_violates_realtime() {
        // bilinear residual upscale + reconstruction at 1440p on the CPU
        let d = DeviceProfile::s8_tab();
        let hr = 2560 * 1440;
        let t = d.cpu_bilinear_ms(hr) + d.cpu_reconstruct_ms(hr);
        assert!(t > REALTIME_BUDGET_MS, "{t:.2}");
        assert!(t < 30.0, "{t:.2}");
    }
}
