//! The cloud-gaming server model (AMD 5900X + RTX 3080 Ti class).

use gss_frame::Resolution;
use serde::{Deserialize, Serialize};

/// Timing/utilization model of the streaming server.
///
/// Calibrated to §IV-B2: at 60 FPS the render+encode pipeline keeps the GPU
/// at ≈79% utilization for 1440p output and ≈52% for 720p, leaving headroom
/// that GameStreamSR spends on depth-map processing and RoI search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerModel {
    /// Game-engine simulation step per frame, ms.
    pub engine_tick_ms: f64,
    /// Render latency at 720p, ms (scales with pixels^GPU_SCALING_EXPONENT).
    pub render_720p_ms: f64,
    /// Hardware (NVENC-class) encode latency at 720p, ms.
    pub encode_720p_ms: f64,
    /// Depth pre-processing + RoI search on GPU compute shaders for a 720p
    /// depth map, ms.
    pub roi_detect_720p_ms: f64,
}

impl Default for ServerModel {
    fn default() -> Self {
        ServerModel {
            engine_tick_ms: 5.0,
            render_720p_ms: 4.2,
            encode_720p_ms: 2.4,
            roi_detect_720p_ms: 1.5,
        }
    }
}

/// Fitted exponent of GPU work versus pixel count: games are partly
/// geometry/CPU-bound, so doubling resolution costs well under 2x. Fitted
/// to the paper's published 52% (720p) / 79% (1440p) utilization pair.
const GPU_SCALING_EXPONENT: f64 = 0.374;

/// Share of the RoI-detection budget spent on depth capture/pre-processing;
/// the rest is the search proper. The split is a telemetry refinement only —
/// every latency formula uses the combined `roi_detect_ms`.
const DEPTH_CAPTURE_FRACTION: f64 = 0.4;

impl ServerModel {
    /// Render latency for a target resolution.
    pub fn render_ms(&self, res: Resolution) -> f64 {
        self.render_720p_ms * res.pixel_ratio(Resolution::P720).powf(GPU_SCALING_EXPONENT)
    }

    /// Encode latency for a target resolution.
    pub fn encode_ms(&self, res: Resolution) -> f64 {
        self.encode_720p_ms * res.pixel_ratio(Resolution::P720).powf(GPU_SCALING_EXPONENT)
    }

    /// RoI-detection latency for a depth map at the given resolution.
    pub fn roi_detect_ms(&self, res: Resolution) -> f64 {
        self.roi_detect_720p_ms * res.pixel_ratio(Resolution::P720)
    }

    /// Depth-buffer capture + pre-processing share of [`Self::roi_detect_ms`]:
    /// copying the depth attachment out of the render target and building the
    /// histogram pyramid the search runs over.
    pub fn depth_capture_ms(&self, res: Resolution) -> f64 {
        self.roi_detect_ms(res) * DEPTH_CAPTURE_FRACTION
    }

    /// RoI search share of [`Self::roi_detect_ms`] (the sliding-window scan
    /// over the pre-processed depth map). Defined as the remainder so the two
    /// phases always sum exactly to [`Self::roi_detect_ms`].
    pub fn roi_search_ms(&self, res: Resolution) -> f64 {
        self.roi_detect_ms(res) - self.depth_capture_ms(res)
    }

    /// GPU utilization at 60 FPS when streaming at `res`, optionally with
    /// RoI detection enabled. Calibrated so 1440p ≈ 79% and 720p ≈ 52%
    /// (without RoI work).
    pub fn gpu_utilization(&self, res: Resolution, with_roi_detection: bool) -> f64 {
        // fixed per-frame GPU overhead (capture, copies, compositing)
        const OVERHEAD_MS: f64 = 2.06;
        let mut busy = self.render_ms(res) + self.encode_ms(res) + OVERHEAD_MS;
        if with_roi_detection {
            busy += self.roi_detect_ms(res);
        }
        (busy / (1000.0 / 60.0)).min(1.0)
    }

    /// Total server-side latency for one streamed frame.
    pub fn frame_latency_ms(&self, res: Resolution, with_roi_detection: bool) -> f64 {
        let mut t = self.engine_tick_ms + self.render_ms(res) + self.encode_ms(res);
        if with_roi_detection {
            // RoI search overlaps encode on spare GPU cores; only the
            // non-overlapped part shows up in latency
            t += (self.roi_detect_ms(res) - self.encode_ms(res)).max(0.0);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_anchors_match_paper() {
        let s = ServerModel::default();
        let hi = s.gpu_utilization(Resolution::P1440, false);
        let lo = s.gpu_utilization(Resolution::P720, false);
        assert!((hi - 0.79).abs() < 0.03, "1440p util {hi:.3}");
        assert!((lo - 0.52).abs() < 0.03, "720p util {lo:.3}");
    }

    #[test]
    fn roi_detection_fits_in_reclaimed_headroom() {
        let s = ServerModel::default();
        let with = s.gpu_utilization(Resolution::P720, true);
        let without_1440 = s.gpu_utilization(Resolution::P1440, false);
        assert!(
            with < without_1440,
            "720p + RoI ({with:.3}) must stay below plain 1440p ({without_1440:.3})"
        );
    }

    #[test]
    fn roi_detection_adds_no_latency_at_720p() {
        // it runs on spare GPU cores concurrently with encode
        let s = ServerModel::default();
        assert_eq!(
            s.frame_latency_ms(Resolution::P720, true),
            s.frame_latency_ms(Resolution::P720, false)
        );
    }

    #[test]
    fn depth_capture_and_roi_search_partition_roi_detect() {
        let s = ServerModel::default();
        for res in [Resolution::P720, Resolution::P1080, Resolution::P1440] {
            let sum = s.depth_capture_ms(res) + s.roi_search_ms(res);
            assert_eq!(sum, s.roi_detect_ms(res), "split must be exact at {res:?}");
            assert!(s.depth_capture_ms(res) > 0.0);
            assert!(s.roi_search_ms(res) > s.depth_capture_ms(res));
        }
    }

    #[test]
    fn latency_grows_with_resolution() {
        let s = ServerModel::default();
        assert!(
            s.frame_latency_ms(Resolution::P1440, false)
                > s.frame_latency_ms(Resolution::P720, false)
        );
    }

    #[test]
    fn utilization_saturates_at_one() {
        let s = ServerModel {
            render_720p_ms: 100.0,
            ..ServerModel::default()
        };
        assert_eq!(s.gpu_utilization(Resolution::P2160, true), 1.0);
    }
}
