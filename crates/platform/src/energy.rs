//! Energy accounting over pipeline activity.

use crate::DeviceProfile;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Pipeline stage, the paper's Fig. 12 breakdown categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Stage {
    /// Video decoding.
    Decode,
    /// Frame upscaling (NPU, GPU or CPU).
    Upscale,
    /// Network packet reception.
    Network,
    /// Display pipeline.
    Display,
    /// Anything else (e.g. the eye-tracking camera in the ablation).
    Other,
}

impl Stage {
    /// All stages in report order.
    pub const ALL: [Stage; 5] = [
        Stage::Decode,
        Stage::Upscale,
        Stage::Network,
        Stage::Display,
        Stage::Other,
    ];

    /// Report label.
    pub const fn label(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Upscale => "upscale",
            Stage::Network => "network",
            Stage::Display => "display",
            Stage::Other => "other",
        }
    }
}

/// Hardware power rail doing the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Rail {
    /// Neural processing unit.
    Npu,
    /// 3D/compute GPU.
    Gpu,
    /// CPU under a multi-threaded load.
    CpuHeavy,
    /// A single busy CPU thread.
    CpuLight,
    /// Fixed-function video decoder.
    HwDecoder,
    /// Front camera (eye-tracking ablation).
    Camera,
}

/// Accumulates energy per stage from busy times, bytes and frames.
///
/// ```
/// use gss_platform::{DeviceProfile, EnergyMeter, Rail, Stage};
///
/// let device = DeviceProfile::pixel7_pro();
/// let mut meter = EnergyMeter::new(&device);
/// meter.add_busy(Stage::Upscale, Rail::Npu, 16.4);
/// meter.add_network_bytes(15_000);
/// meter.add_display_frame();
/// assert!(meter.total_mj() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    device: DeviceProfile,
    per_stage_mj: BTreeMap<Stage, f64>,
}

impl EnergyMeter {
    /// A meter for the given device.
    pub fn new(device: &DeviceProfile) -> Self {
        EnergyMeter {
            device: device.clone(),
            per_stage_mj: BTreeMap::new(),
        }
    }

    fn rail_power_w(&self, rail: Rail) -> f64 {
        match rail {
            Rail::Npu => self.device.npu_w,
            Rail::Gpu => self.device.gpu_w,
            Rail::CpuHeavy => self.device.cpu_heavy_w,
            Rail::CpuLight => self.device.cpu_light_w,
            Rail::HwDecoder => self.device.hw_decoder_w,
            Rail::Camera => self.device.camera_w,
        }
    }

    /// Charges `busy_ms` of a rail's activity to a stage.
    pub fn add_busy(&mut self, stage: Stage, rail: Rail, busy_ms: f64) {
        let mj = self.rail_power_w(rail) * busy_ms; // W · ms = mJ
        *self.per_stage_mj.entry(stage).or_insert(0.0) += mj;
    }

    /// Charges radio energy for `bytes` received.
    pub fn add_network_bytes(&mut self, bytes: usize) {
        let mj = self.device.net_uj_per_byte * bytes as f64 / 1000.0;
        *self.per_stage_mj.entry(Stage::Network).or_insert(0.0) += mj;
    }

    /// Charges the display pipeline for one presented frame.
    pub fn add_display_frame(&mut self) {
        *self.per_stage_mj.entry(Stage::Display).or_insert(0.0) += self.device.display_mj_per_frame;
    }

    /// Total accumulated energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.per_stage_mj.values().sum()
    }

    /// Snapshot of the per-stage breakdown.
    pub fn breakdown(&self) -> EnergyBreakdown {
        let total = self.total_mj();
        EnergyBreakdown {
            per_stage_mj: Stage::ALL
                .iter()
                .map(|&s| (s, self.per_stage_mj.get(&s).copied().unwrap_or(0.0)))
                .collect(),
            total_mj: total,
        }
    }
}

/// A per-stage energy report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy per stage in millijoules, report order.
    pub per_stage_mj: Vec<(Stage, f64)>,
    /// Total energy in millijoules.
    pub total_mj: f64,
}

impl EnergyBreakdown {
    /// Fraction of the total spent in a stage (0 when the total is 0).
    pub fn fraction(&self, stage: Stage) -> f64 {
        if self.total_mj <= 0.0 {
            return 0.0;
        }
        self.per_stage_mj
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, mj)| mj / self.total_mj)
            .unwrap_or(0.0)
    }

    /// Energy of one stage in millijoules.
    pub fn stage_mj(&self, stage: Stage) -> f64 {
        self.per_stage_mj
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, mj)| *mj)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_times_ms_is_mj() {
        let d = DeviceProfile::pixel7_pro();
        let mut m = EnergyMeter::new(&d);
        m.add_busy(Stage::Upscale, Rail::Npu, 100.0);
        assert!((m.total_mj() - d.npu_w * 100.0).abs() < 1e-9);
    }

    #[test]
    fn stages_accumulate_independently() {
        let d = DeviceProfile::s8_tab();
        let mut m = EnergyMeter::new(&d);
        m.add_busy(Stage::Decode, Rail::HwDecoder, 5.0);
        m.add_busy(Stage::Upscale, Rail::Gpu, 1.4);
        m.add_display_frame();
        let b = m.breakdown();
        assert!((b.stage_mj(Stage::Decode) - 5.0 * d.hw_decoder_w).abs() < 1e-9);
        assert!((b.stage_mj(Stage::Display) - d.display_mj_per_frame).abs() < 1e-9);
        let frac_sum: f64 = Stage::ALL.iter().map(|&s| b.fraction(s)).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn network_energy_scales_with_bytes() {
        let d = DeviceProfile::pixel7_pro();
        let mut m = EnergyMeter::new(&d);
        m.add_network_bytes(1_000_000);
        assert!((m.total_mj() - d.net_uj_per_byte * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_meter_reports_zero() {
        let m = EnergyMeter::new(&DeviceProfile::s8_tab());
        let b = m.breakdown();
        assert_eq!(b.total_mj, 0.0);
        assert_eq!(b.fraction(Stage::Upscale), 0.0);
    }

    #[test]
    fn camera_eyetracking_draw_matches_paper() {
        // §III-A: +2.8 W while eye-tracking; one second of tracking
        let d = DeviceProfile::pixel7_pro();
        let mut m = EnergyMeter::new(&d);
        m.add_busy(Stage::Other, Rail::Camera, 1000.0);
        assert!((m.total_mj() - 2800.0).abs() < 1e-6);
    }
}
