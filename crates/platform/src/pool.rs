//! Deterministic work splitting across scoped worker threads.
//!
//! Every hot loop in the pipeline (motion search, DCT/quant, convolution,
//! resampling, rasterization) parallelizes through this module, under one
//! **determinism contract**: work is divided into chunks whose boundaries
//! depend only on the *data* (a macroblock row, an output channel, a pixel
//! row) — never on the worker count — each chunk is computed by exactly one
//! worker, and results are merged in chunk-index order. A run with `N`
//! workers therefore produces output bit-identical to the scalar path for
//! every `N`, including float accumulations (each chunk's arithmetic is a
//! self-contained serial computation).
//!
//! Chunks are *assigned* to workers cyclically (worker `w` owns chunks
//! `w, w+N, w+2N, …`). Assignment affects only which thread runs a chunk,
//! never the chunk's arithmetic or the merge order, so it is free to
//! change with `N` — and the cyclic schedule balances loops whose cost
//! drifts along the index (e.g. raster rows near the horizon) far better
//! than contiguous blocks.
//!
//! The worker count is a process-wide knob: [`set_workers`] (the bench
//! binary's `--threads` flag), the `GSS_THREADS` environment variable, or
//! the default of `available_parallelism` capped at 8. The `*_with`
//! variants take an explicit count for paired scalar-vs-parallel identity
//! tests that must not touch global state, and [`PoolHandle`] captures the
//! count once at session construction and [binds](PoolHandle::bind) it to
//! the stepping thread, so concurrent sessions in one process cannot
//! clobber each other through the global knob.
//!
//! Threads come from the vendored `crossbeam::thread::scope` shim (real OS
//! threads, structured join), so borrowed inputs flow into workers without
//! `'static` gymnastics and every worker has exited before a call returns.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Process-wide worker count; `0` means "not yet resolved".
static WORKERS: AtomicUsize = AtomicUsize::new(0);

/// When set, parallel regions run their chunks serially while measuring
/// each chunk's cost (see [`start_accounting`]).
static ACCOUNTING: AtomicBool = AtomicBool::new(false);
/// Sum of every chunk's serial cost across accounted regions, ns.
static ACCOUNTED_WORK_NS: AtomicU64 = AtomicU64::new(0);
/// Sum over accounted regions of the most-loaded worker's cost, ns.
static ACCOUNTED_SPAN_NS: AtomicU64 = AtomicU64::new(0);
/// Per-worker cost accumulators; worker indices beyond the slot count
/// fold into the last slot.
static ACCOUNTED_WORKER_NS: [AtomicU64; MAX_TRACKED_WORKERS] =
    [const { AtomicU64::new(0) }; MAX_TRACKED_WORKERS];

/// Number of per-worker accounting slots kept by the pool. The default
/// worker cap is 8 and the scaling ladder tops out there too, so 32 slots
/// are comfortably beyond anything configured in practice.
pub const MAX_TRACKED_WORKERS: usize = 32;

/// Critical-path accounting of the parallel regions executed since
/// [`start_accounting`]: total chunk work, the modeled span, and how the
/// work split across workers.
#[derive(Debug, Clone, Default)]
pub struct PoolAccounting {
    /// Serial cost of all chunks in all accounted regions, ns.
    pub work_ns: u64,
    /// Modeled parallel cost: per region, the most-loaded worker's chunk
    /// cost; summed over regions, ns.
    pub span_ns: u64,
    /// Cost charged to each worker index, summed over accounted regions,
    /// ns. Trailing never-used slots are trimmed; slot `i` covers worker
    /// `i` (the last kept slot also absorbs any workers beyond
    /// [`MAX_TRACKED_WORKERS`]). These are wall-clock measurements, so —
    /// unlike the modeled times in the telemetry traces — they vary run to
    /// run and only feed the scaling table and benchmark harness.
    pub per_worker_ns: Vec<u64>,
}

impl PoolAccounting {
    /// Load-imbalance factor across workers: the most-loaded worker's cost
    /// over the mean cost (`1.0` = perfectly balanced). Returns `1.0` when
    /// nothing was accounted.
    pub fn imbalance(&self) -> f64 {
        let n = self.per_worker_ns.len();
        if n == 0 {
            return 1.0;
        }
        let total: u64 = self.per_worker_ns.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = *self.per_worker_ns.iter().max().expect("nonempty") as f64;
        max / (total as f64 / n as f64)
    }

    /// Renders the per-worker accounting as collapsed-stack lines
    /// (`pool;worker-N <ns>`), the input format of flamegraph tooling
    /// (e.g. `flamegraph.pl`, speedscope, inferno). One line per tracked
    /// worker plus a `pool;idle` line charging the span's unused capacity
    /// (`span_ns × workers − Σ per-worker`), so the flame width reflects
    /// load imbalance directly. These are wall-clock numbers: unlike the
    /// triage JSON they vary run to run and must ship as a separate
    /// artifact.
    pub fn collapsed_stack(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut busy = 0u64;
        for (i, &ns) in self.per_worker_ns.iter().enumerate() {
            let _ = writeln!(out, "pool;worker-{i} {ns}");
            busy += ns;
        }
        let capacity = self.span_ns.saturating_mul(self.per_worker_ns.len() as u64);
        let _ = writeln!(out, "pool;idle {}", capacity.saturating_sub(busy));
        out
    }
}

/// Switches parallel regions into accounting mode: chunks execute
/// serially (in chunk-index order, so output is bit-identical by
/// construction) while each worker's assigned cost is measured. A region
/// contributes the sum of its chunk costs to `work_ns` and the
/// most-loaded worker's cost to `span_ns` — the wall-clock the region
/// would take on an unloaded machine with one core per worker. This is
/// how the scaling experiment models multi-core speedup on machines with
/// fewer cores than workers, in the same spirit as the device timing
/// models elsewhere in the pipeline.
pub fn start_accounting() {
    ACCOUNTED_WORK_NS.store(0, Ordering::Relaxed);
    ACCOUNTED_SPAN_NS.store(0, Ordering::Relaxed);
    for slot in &ACCOUNTED_WORKER_NS {
        slot.store(0, Ordering::Relaxed);
    }
    ACCOUNTING.store(true, Ordering::Relaxed);
}

/// Leaves accounting mode and returns the accumulated totals.
pub fn stop_accounting() -> PoolAccounting {
    ACCOUNTING.store(false, Ordering::Relaxed);
    let mut per_worker_ns: Vec<u64> = ACCOUNTED_WORKER_NS
        .iter()
        .map(|slot| slot.load(Ordering::Relaxed))
        .collect();
    while per_worker_ns.last() == Some(&0) {
        per_worker_ns.pop();
    }
    PoolAccounting {
        work_ns: ACCOUNTED_WORK_NS.load(Ordering::Relaxed),
        span_ns: ACCOUNTED_SPAN_NS.load(Ordering::Relaxed),
        per_worker_ns,
    }
}

fn record_region(work_ns: u64, span_ns: u64, per_worker_ns: &[u64]) {
    ACCOUNTED_WORK_NS.fetch_add(work_ns, Ordering::Relaxed);
    ACCOUNTED_SPAN_NS.fetch_add(span_ns, Ordering::Relaxed);
    for (w, &ns) in per_worker_ns.iter().enumerate() {
        ACCOUNTED_WORKER_NS[w.min(MAX_TRACKED_WORKERS - 1)].fetch_add(ns, Ordering::Relaxed);
    }
}

/// Cap on the auto-detected default so wide desktop CPUs do not
/// oversubscribe the nested NPU ∥ GPU client scopes.
const MAX_DEFAULT_WORKERS: usize = 8;

/// Below this many elements a banded loop runs inline: thread spawn costs
/// more than the work it would move.
const MIN_PARALLEL_ELEMS: usize = 4096;

fn default_workers() -> usize {
    if let Ok(v) = std::env::var("GSS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get().min(MAX_DEFAULT_WORKERS))
}

/// The active worker count (≥ 1). Resolved on first use from
/// `GSS_THREADS`, falling back to `available_parallelism` capped at 8.
pub fn workers() -> usize {
    match WORKERS.load(Ordering::Relaxed) {
        0 => {
            let n = default_workers();
            WORKERS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Sets the process-wide worker count (clamped to ≥ 1). `1` disables
/// thread spawning entirely — the scalar reference path.
pub fn set_workers(n: usize) {
    WORKERS.store(n.max(1), Ordering::Relaxed);
}

thread_local! {
    /// Per-thread worker-count override installed by [`PoolHandle::bind`];
    /// `0` means "no binding, use the process-wide knob".
    static BOUND_WORKERS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The worker count in effect on this thread: a [`PoolHandle`] binding if
/// one is active, otherwise the process-wide knob. All implicit entry
/// points ([`map_indexed`], [`for_each_band_mut`], [`build_rows`]) resolve
/// through this, so a bound session never observes a concurrent
/// [`set_workers`] from another session in the same process.
pub fn effective_workers() -> usize {
    let bound = BOUND_WORKERS.with(|w| w.get());
    if bound > 0 {
        bound
    } else {
        workers()
    }
}

/// An explicit, immutable worker-count capacity resolved once — the
/// per-session alternative to the process-wide [`set_workers`] knob.
///
/// Two sessions stepped in one process used to race on the global atomic:
/// whichever called `set_workers` last silently reconfigured the other's
/// kernels mid-frame. A handle is captured at session construction
/// ([`PoolHandle::current`]) and [bound](PoolHandle::bind) for the duration
/// of each stepping scope, so every `pool::` entry point under that scope
/// resolves to the session's own capacity regardless of what other
/// sessions do to the global knob. Outputs are bit-identical at any count
/// by the determinism contract; the handle pins *scheduling*, not results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolHandle {
    workers: usize,
}

impl PoolHandle {
    /// Snapshot of the worker count in effect right now (a binding if one
    /// is active, else the process-wide knob).
    pub fn current() -> Self {
        Self {
            workers: effective_workers(),
        }
    }

    /// A handle with an explicit worker count (clamped to ≥ 1).
    pub fn with_workers(n: usize) -> Self {
        Self { workers: n.max(1) }
    }

    /// The capacity this handle resolves to.
    pub fn workers(self) -> usize {
        self.workers
    }

    /// Installs this handle as the calling thread's worker count until the
    /// returned guard drops; nested bindings stack. While bound, implicit
    /// pool entry points ignore [`set_workers`] from other threads.
    pub fn bind(self) -> PoolBinding {
        let prev = BOUND_WORKERS.with(|w| w.replace(self.workers));
        PoolBinding { prev }
    }

    /// [`map_indexed_with`] at this handle's capacity.
    pub fn map_indexed<T, F>(self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        map_indexed_with(n, self.workers, f)
    }

    /// [`for_each_mut_with`] at this handle's capacity.
    pub fn for_each_mut<T, F>(self, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        for_each_mut_with(data, self.workers, f);
    }
}

impl Default for PoolHandle {
    fn default() -> Self {
        Self::current()
    }
}

/// Guard restoring the previous thread binding; see [`PoolHandle::bind`].
#[derive(Debug)]
pub struct PoolBinding {
    prev: usize,
}

impl Drop for PoolBinding {
    fn drop(&mut self) {
        BOUND_WORKERS.with(|w| w.set(self.prev));
    }
}

/// Cyclic chunk→worker assignment: worker `i` owns chunks
/// `i, i + parts, i + 2·parts, …`. Per the determinism contract the
/// assignment only picks *which worker* runs a chunk; chunk boundaries and
/// the merge order are fixed by the data alone.
fn assignment(n: usize, parts: usize) -> Vec<std::iter::StepBy<Range<usize>>> {
    let parts = parts.clamp(1, n.max(1));
    (0..parts).map(|i| (i..n).step_by(parts)).collect()
}

/// Computes `f(0), f(1), …, f(n-1)` across the global worker count and
/// returns the results in index order. See [`map_indexed_with`].
pub fn map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_with(n, effective_workers(), f)
}

/// [`map_indexed`] with an explicit worker count. Output is identical for
/// every `workers` value: indices are split into contiguous ranges, each
/// range is evaluated serially by one worker, and the per-range result
/// vectors are concatenated in range order.
pub fn map_indexed_with<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if workers <= 1 || n == 1 {
        return (0..n).map(f).collect();
    }
    if ACCOUNTING.load(Ordering::Relaxed) {
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let (mut work, mut span) = (0u64, 0u64);
        let mut per_worker = Vec::with_capacity(workers);
        for chunks in assignment(n, workers) {
            let t = Instant::now();
            for i in chunks {
                out[i] = Some(f(i));
            }
            let ns = t.elapsed().as_nanos() as u64;
            work += ns;
            span = span.max(ns);
            per_worker.push(ns);
        }
        record_region(work, span, &per_worker);
        return out
            .into_iter()
            .map(|v| v.expect("every index computed"))
            .collect();
    }
    let f = &f;
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = assignment(n, workers)
            .into_iter()
            .map(|chunks| s.spawn(move |_| chunks.map(|i| (i, f(i))).collect::<Vec<(usize, T)>>()))
            .collect();
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for h in handles {
            for (i, v) in h.join().expect("pool worker panicked") {
                out[i] = Some(v);
            }
        }
        out.into_iter()
            .map(|v| v.expect("every index computed"))
            .collect()
    })
    .expect("pool scope panicked")
}

/// Splits `data` into consecutive bands of `band_len` elements (the last
/// may be shorter) and calls `f(band_index, band)` for each, across the
/// global worker count. See [`for_each_band_mut_with`].
pub fn for_each_band_mut<T, F>(data: &mut [T], band_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    for_each_band_mut_with(data, band_len, effective_workers(), f);
}

/// [`for_each_band_mut`] with an explicit worker count. Each band is a
/// disjoint `&mut` sub-slice, visited exactly once; band boundaries depend
/// only on `(data.len(), band_len)`, so the writes are identical for every
/// `workers` value. Small inputs (< ~4 Ki elements) run inline.
///
/// # Panics
///
/// Panics when `band_len` is zero.
pub fn for_each_band_mut_with<T, F>(data: &mut [T], band_len: usize, workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(band_len > 0, "band length must be nonzero");
    let n = data.len().div_ceil(band_len);
    if workers <= 1 || n <= 1 || data.len() < MIN_PARALLEL_ELEMS {
        for (i, band) in data.chunks_mut(band_len).enumerate() {
            f(i, band);
        }
        return;
    }
    // cyclic partition: band i goes to worker i % parts; the bands are
    // disjoint `&mut` sub-slices, so ownership moves into the groups
    let parts = workers.min(n);
    let mut groups: Vec<Vec<(usize, &mut [T])>> = (0..parts).map(|_| Vec::new()).collect();
    for (i, band) in data.chunks_mut(band_len).enumerate() {
        groups[i % parts].push((i, band));
    }
    if ACCOUNTING.load(Ordering::Relaxed) {
        let (mut work, mut span) = (0u64, 0u64);
        let mut per_worker = Vec::with_capacity(parts);
        for group in groups {
            let t = Instant::now();
            for (i, band) in group {
                f(i, band);
            }
            let ns = t.elapsed().as_nanos() as u64;
            work += ns;
            span = span.max(ns);
            per_worker.push(ns);
        }
        record_region(work, span, &per_worker);
        return;
    }
    let f = &f;
    crossbeam::thread::scope(|s| {
        for group in groups {
            s.spawn(move |_| {
                for (i, band) in group {
                    f(i, band);
                }
            });
        }
    })
    .expect("pool scope panicked");
}

/// Visits every element of `data` exactly once as a disjoint `&mut`,
/// cyclically assigned across `workers` threads. Unlike
/// [`for_each_band_mut_with`] there is no inline-size floor: this is for
/// *heavyweight* elements (e.g. whole simulator sessions) where even a
/// handful justify threads. Each element's computation must be
/// self-contained for the determinism contract to carry: assignment picks
/// only which thread runs an element, never what it computes.
pub fn for_each_mut_with<T, F>(data: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = data.len();
    if workers <= 1 || n <= 1 {
        for (i, item) in data.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let parts = workers.min(n);
    let mut groups: Vec<Vec<(usize, &mut T)>> = (0..parts).map(|_| Vec::new()).collect();
    for (i, item) in data.iter_mut().enumerate() {
        groups[i % parts].push((i, item));
    }
    if ACCOUNTING.load(Ordering::Relaxed) {
        let (mut work, mut span) = (0u64, 0u64);
        let mut per_worker = Vec::with_capacity(parts);
        for group in groups {
            let t = Instant::now();
            for (i, item) in group {
                f(i, item);
            }
            let ns = t.elapsed().as_nanos() as u64;
            work += ns;
            span = span.max(ns);
            per_worker.push(ns);
        }
        record_region(work, span, &per_worker);
        return;
    }
    let f = &f;
    crossbeam::thread::scope(|s| {
        for group in groups {
            s.spawn(move |_| {
                for (i, item) in group {
                    f(i, item);
                }
            });
        }
    })
    .expect("pool scope panicked");
}

/// Builds a `width × height` row-major buffer by filling each row in
/// parallel: `f(y, row)` receives row `y` as a mutable slice pre-filled
/// with `fill`. The row partitioning follows the determinism contract.
pub fn build_rows<T, F>(width: usize, height: usize, fill: T, f: F) -> Vec<T>
where
    T: Send + Clone,
    F: Fn(usize, &mut [T]) + Sync,
{
    let mut data = vec![fill; width * height];
    if width > 0 {
        for_each_band_mut(&mut data, width, f);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_covers_every_chunk_exactly_once_and_balances() {
        for n in [0usize, 1, 2, 7, 8, 9, 64, 1000] {
            for parts in [1usize, 2, 3, 4, 8, 16] {
                let groups = assignment(n, parts);
                let mut all: Vec<usize> = groups.iter().cloned().flatten().collect();
                all.sort_unstable();
                assert_eq!(all, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
                // cyclic assignment: group sizes differ by at most one
                let sizes: Vec<usize> = groups.iter().cloned().map(Iterator::count).collect();
                let (lo, hi) = (sizes.iter().min(), sizes.iter().max());
                assert!(
                    hi.unwrap_or(&0) - lo.unwrap_or(&0) <= 1,
                    "n={n} parts={parts}"
                );
            }
        }
    }

    #[test]
    fn map_indexed_matches_scalar_for_every_worker_count() {
        let scalar: Vec<u64> = (0..137).map(|i| (i as u64) * 3 + 1).collect();
        for w in [1usize, 2, 3, 4, 8, 16] {
            let par = map_indexed_with(137, w, |i| (i as u64) * 3 + 1);
            assert_eq!(par, scalar, "workers={w}");
        }
    }

    #[test]
    fn float_chunks_are_bit_identical_across_worker_counts() {
        // each chunk folds serially; merging in index order keeps the
        // result bit-identical no matter how many workers ran
        let f = |i: usize| (0..50).fold(0.0f32, |acc, k| acc + (i * 50 + k) as f32 * 0.731);
        let scalar: Vec<f32> = (0..33).map(f).collect();
        for w in [2usize, 5, 8] {
            let par = map_indexed_with(33, w, f);
            assert_eq!(
                par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn bands_visit_every_element_once() {
        for w in [1usize, 2, 4, 8] {
            let mut data = vec![0u32; 10_000];
            for_each_band_mut_with(&mut data, 300, w, |band, slice| {
                for (j, v) in slice.iter_mut().enumerate() {
                    *v += (band * 300 + j) as u32 + 1;
                }
            });
            let expect: Vec<u32> = (1..=10_000).collect();
            assert_eq!(data, expect, "workers={w}");
        }
    }

    #[test]
    fn short_final_band_is_handled() {
        let mut data = vec![0u8; 4097]; // above the inline threshold
        for_each_band_mut_with(&mut data, 1024, 4, |band, slice| {
            for v in slice.iter_mut() {
                *v = band as u8 + 1;
            }
        });
        assert_eq!(data[0], 1);
        assert_eq!(data[4095], 4);
        assert_eq!(data[4096], 5); // lone element of the fifth band
    }

    #[test]
    fn build_rows_fills_by_row_index() {
        let data = build_rows(64, 80, 0u16, |y, row| {
            for (x, v) in row.iter_mut().enumerate() {
                *v = (y * 64 + x) as u16;
            }
        });
        assert_eq!(data.len(), 64 * 80);
        assert!(data.iter().enumerate().all(|(i, &v)| v as usize == i));
    }

    #[test]
    fn worker_count_floor_is_one_and_bindings_shield_the_thread() {
        set_workers(0);
        assert_eq!(workers(), 1);
        set_workers(4);
        assert_eq!(workers(), 4);
        // a bound handle shields this thread from the global knob
        {
            let _bind = PoolHandle::with_workers(3).bind();
            assert_eq!(effective_workers(), 3);
            set_workers(7);
            assert_eq!(effective_workers(), 3);
            // nested bindings stack and restore
            {
                let _inner = PoolHandle::with_workers(2).bind();
                assert_eq!(effective_workers(), 2);
            }
            assert_eq!(effective_workers(), 3);
        }
        assert_eq!(effective_workers(), workers());
        set_workers(4);
    }

    #[test]
    fn accounting_measures_work_and_span_without_changing_results() {
        let f = |i: usize| (0..400).fold(0.0f64, |acc, k| acc + ((i + k) as f64).sqrt());
        let scalar: Vec<f64> = (0..64).map(f).collect();
        start_accounting();
        let accounted = map_indexed_with(64, 4, f);
        let mut banded = vec![0u64; 8192];
        for_each_band_mut_with(&mut banded, 1024, 4, |b, band| {
            for (j, v) in band.iter_mut().enumerate() {
                *v = (b * 1024 + j) as u64;
            }
        });
        let acct = stop_accounting();
        assert_eq!(accounted, scalar);
        assert!(banded.iter().enumerate().all(|(i, &v)| v == i as u64));
        // the span is the most-loaded worker per region: never more than
        // the total work, and nonzero once any region ran
        assert!(acct.span_ns > 0);
        assert!(acct.span_ns <= acct.work_ns);
        // per-worker costs partition the work: they sum to it exactly, no
        // worker exceeds the span (max-of-sums <= sum-of-maxes), and both
        // 4-worker regions above populate all four slots
        assert_eq!(acct.per_worker_ns.iter().sum::<u64>(), acct.work_ns);
        assert!(acct.per_worker_ns.iter().all(|&ns| ns <= acct.span_ns));
        assert_eq!(acct.per_worker_ns.len(), 4);
        assert!(acct.imbalance() >= 1.0);
    }

    #[test]
    fn imbalance_of_empty_accounting_is_one() {
        let acct = PoolAccounting::default();
        assert_eq!(acct.imbalance(), 1.0);
        let skewed = PoolAccounting {
            work_ns: 40,
            span_ns: 30,
            per_worker_ns: vec![30, 10],
        };
        assert_eq!(skewed.imbalance(), 1.5);
    }

    #[test]
    fn collapsed_stack_lists_workers_and_idle_capacity() {
        let acct = PoolAccounting {
            work_ns: 40,
            span_ns: 30,
            per_worker_ns: vec![30, 10],
        };
        assert_eq!(
            acct.collapsed_stack(),
            "pool;worker-0 30\npool;worker-1 10\npool;idle 20\n"
        );
        assert_eq!(PoolAccounting::default().collapsed_stack(), "pool;idle 0\n");
    }

    #[test]
    fn empty_input_is_a_noop() {
        assert!(map_indexed_with(0, 4, |i| i).is_empty());
        let mut empty: Vec<u8> = Vec::new();
        for_each_band_mut_with(&mut empty, 16, 4, |_, _| panic!("no bands"));
        let mut none: Vec<u8> = Vec::new();
        for_each_mut_with(&mut none, 4, |_, _| panic!("no elements"));
    }

    #[test]
    fn for_each_mut_visits_every_element_once_at_any_worker_count() {
        for w in [1usize, 2, 3, 8, 16] {
            let mut data = vec![0u32; 13];
            for_each_mut_with(&mut data, w, |i, v| *v += i as u32 + 1);
            let expect: Vec<u32> = (1..=13).collect();
            assert_eq!(data, expect, "workers={w}");
        }
    }

    #[test]
    fn handle_workers_floor_is_one() {
        assert_eq!(PoolHandle::with_workers(0).workers(), 1);
        assert!(PoolHandle::current().workers() >= 1);
    }
}
