//! Row-parallel plane operations under the [`crate::pool`] determinism
//! contract.
//!
//! These mirror the serial `Plane` combinators (`map`, `zip_map`,
//! `downsample_box`) element-for-element: every output pixel is an
//! independent computation with the same arithmetic in the same order, so
//! the result is bit-identical to the serial path at any worker count.
//! They live here rather than in `gss-frame` because the frame crate sits
//! below the thread pool in the crate graph.

use crate::pool;
use gss_frame::Plane;

/// Row-parallel [`Plane::map`] for `f32` planes.
pub fn map(p: &Plane<f32>, f: impl Fn(f32) -> f32 + Sync) -> Plane<f32> {
    let (w, h) = p.size();
    if w == 0 || h == 0 {
        return p.map(f);
    }
    let data = pool::build_rows(w, h, 0.0f32, |y, row| {
        for (v, &s) in row.iter_mut().zip(p.row(y)) {
            *v = f(s);
        }
    });
    Plane::from_vec(w, h, data).expect("rows cover the plane")
}

/// Row-parallel [`Plane::zip_map`] for `f32` planes.
///
/// # Panics
///
/// Panics when the planes differ in size (the serial version returns an
/// error; every call site here pairs planes produced at the same size).
pub fn zip_map(a: &Plane<f32>, b: &Plane<f32>, f: impl Fn(f32, f32) -> f32 + Sync) -> Plane<f32> {
    assert_eq!(a.size(), b.size(), "zip_map planes must share a size");
    let (w, h) = a.size();
    if w == 0 || h == 0 {
        return Plane::new(w, h);
    }
    let data = pool::build_rows(w, h, 0.0f32, |y, row| {
        for ((v, &x), &z) in row.iter_mut().zip(a.row(y)).zip(b.row(y)) {
            *v = f(x, z);
        }
    });
    Plane::from_vec(w, h, data).expect("rows cover the plane")
}

/// Row-parallel [`Plane::downsample_box`]: each output pixel is an
/// independent `factor x factor` mean with the same accumulation order.
///
/// # Panics
///
/// Panics when `factor` is zero or does not divide both dimensions.
pub fn downsample_box(p: &Plane<f32>, factor: usize) -> Plane<f32> {
    let (w, h) = p.size();
    assert!(
        factor > 0 && w % factor == 0 && h % factor == 0,
        "factor {factor} must divide {w}x{h}"
    );
    let ow = w / factor;
    let oh = h / factor;
    let norm = 1.0 / (factor * factor) as f32;
    let data = pool::build_rows(ow, oh, 0.0f32, |oy, row| {
        for (ox, v) in row.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for dy in 0..factor {
                for dx in 0..factor {
                    acc += p.get(ox * factor + dx, oy * factor + dy);
                }
            }
            *v = acc * norm;
        }
    });
    Plane::from_vec(ow, oh, data).expect("rows cover the output plane")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> Plane<f32> {
        Plane::from_fn(w, h, |x, y| ((x * 31 + y * 17) % 251) as f32 * 0.731)
    }

    #[test]
    fn map_matches_serial_bitwise() {
        let p = textured(130, 77);
        let serial = p.map(|v| (v * 1.5 - 12.25).clamp(0.0, 255.0));
        let par = map(&p, |v| (v * 1.5 - 12.25).clamp(0.0, 255.0));
        assert_eq!(serial.as_slice(), par.as_slice());
    }

    #[test]
    fn zip_map_matches_serial_bitwise() {
        let a = textured(96, 64);
        let b = textured(96, 64).map(|v| v + 3.0);
        let serial = a.zip_map(&b, |x, y| x - y).unwrap();
        let par = zip_map(&a, &b, |x, y| x - y);
        assert_eq!(serial.as_slice(), par.as_slice());
    }

    #[test]
    fn downsample_matches_serial_bitwise() {
        let p = textured(128, 72);
        for factor in [1usize, 2, 4] {
            let serial = p.downsample_box(factor);
            let par = downsample_box(&p, factor);
            assert_eq!(serial.as_slice(), par.as_slice(), "factor {factor}");
        }
    }
}
