//! Property-based tests of the resampling layer: every kernel, every
//! direction, bounded outputs and structural invariants.

use gss_frame::Plane;
use gss_sr::{resize_plane, InterpKernel, InterpUpscaler, NeuralSr, NeuralSrConfig, Upscaler};
use proptest::prelude::*;

const KERNELS: [InterpKernel; 4] = [
    InterpKernel::Nearest,
    InterpKernel::Bilinear,
    InterpKernel::Bicubic,
    InterpKernel::Lanczos3,
];

fn arb_plane() -> impl Strategy<Value = Plane<f32>> {
    (2usize..24, 2usize..24, 0u64..1000).prop_map(|(w, h, seed)| {
        Plane::from_fn(w, h, |x, y| {
            let v = (x as u64)
                .wrapping_mul(seed.wrapping_add(11))
                .wrapping_add((y as u64).wrapping_mul(29))
                .wrapping_mul(0x9E3779B9);
            (v % 256) as f32
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn resize_output_has_requested_dimensions(
        p in arb_plane(), ow in 1usize..48, oh in 1usize..48,
    ) {
        for k in KERNELS {
            let out = resize_plane(&p, ow, oh, k);
            prop_assert_eq!(out.size(), (ow, oh));
        }
    }

    #[test]
    fn nearest_and_bilinear_never_overshoot(
        p in arb_plane(), ow in 1usize..48, oh in 1usize..48,
    ) {
        // non-negative kernels cannot produce values outside the input range
        let (lo, hi) = p.min_max();
        for k in [InterpKernel::Nearest, InterpKernel::Bilinear] {
            let out = resize_plane(&p, ow, oh, k);
            let (olo, ohi) = out.min_max();
            prop_assert!(olo >= lo - 1e-3, "{k:?}: {olo} < {lo}");
            prop_assert!(ohi <= hi + 1e-3, "{k:?}: {ohi} > {hi}");
        }
    }

    #[test]
    fn all_kernels_preserve_constants(
        value in 0.0f32..255.0, w in 2usize..20, h in 2usize..20,
        ow in 1usize..40, oh in 1usize..40,
    ) {
        let p = Plane::filled(w, h, value);
        for k in KERNELS {
            let out = resize_plane(&p, ow, oh, k);
            for &v in out.iter() {
                prop_assert!((v - value).abs() < 1e-2, "{k:?}: {v} vs {value}");
            }
        }
    }

    #[test]
    fn upscale_then_boxdown_approximates_identity(p in arb_plane()) {
        // the neural proxy enforces exactly this consistency
        let sr = NeuralSr::new(NeuralSrConfig::default());
        let up = sr.upscale_plane(&p);
        let back = up.downsample_box(2);
        let err = p.zip_map(&back, |a, b| (a - b).abs()).unwrap().mean();
        prop_assert!(err < 14.0, "mean reconstruction error {err}");
    }

    #[test]
    fn identity_resize_returns_input(p in arb_plane()) {
        let (w, h) = p.size();
        for k in KERNELS {
            prop_assert_eq!(resize_plane(&p, w, h, k), p.clone());
        }
    }

    #[test]
    fn upscaler_trait_consistency(p in arb_plane(), scale in 1usize..4) {
        let up = InterpUpscaler::new(InterpKernel::Bicubic, scale);
        let out = up.upscale_plane(&p);
        prop_assert_eq!(out.size(), (p.width() * scale, p.height() * scale));
        prop_assert_eq!(up.scale(), scale);
    }
}
