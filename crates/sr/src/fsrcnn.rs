//! A from-scratch forward pass of FSRCNN (Dong et al., ECCV'16), a
//! lightweight SR architecture roughly an order of magnitude cheaper than
//! EDSR-16/64.
//!
//! The paper's design is model-agnostic: the client benchmarks "the
//! DNN-based SR model of the user's choice" at session start (step-0) and
//! the server sizes the RoI window accordingly (§IV-B1). FSRCNN is the
//! second model in this reproduction's registry, demonstrating how a
//! cheaper network buys a larger real-time RoI window on the same NPU —
//! see the model-choice ablation (`figures ablation`).
//!
//! Structure: 5×5 feature extraction → 1×1 shrink → `m` 3×3 mapping layers
//! → 1×1 expand → sub-pixel upsampling (the deconvolution of the original
//! paper expressed as conv + pixel shuffle).
//!
//! ```
//! use gss_sr::fsrcnn::{Fsrcnn, FsrcnnConfig};
//! use gss_frame::Frame;
//!
//! let model = Fsrcnn::new(FsrcnnConfig { features: 8, shrink: 4, mapping: 1, scale: 2 });
//! let hr = model.forward(&Frame::filled(8, 6, [90.0, 128.0, 128.0]));
//! assert_eq!(hr.size(), (16, 12));
//! ```

use crate::nn::{pixel_shuffle, relu, Conv2d, Tensor};
use gss_frame::Frame;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// FSRCNN hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsrcnnConfig {
    /// Feature-extraction channels `d` (original paper: 56).
    pub features: usize,
    /// Shrunken mapping channels `s` (original paper: 12).
    pub shrink: usize,
    /// Number of 3×3 mapping layers `m` (original paper: 4).
    pub mapping: usize,
    /// Upscale factor.
    pub scale: usize,
}

impl Default for FsrcnnConfig {
    fn default() -> Self {
        FsrcnnConfig {
            features: 56,
            shrink: 12,
            mapping: 4,
            scale: 2,
        }
    }
}

/// The FSRCNN super-resolution network.
#[derive(Debug, Clone)]
pub struct Fsrcnn {
    config: FsrcnnConfig,
    extract: Conv2d,
    shrink: Conv2d,
    mapping: Vec<Conv2d>,
    expand: Conv2d,
    upsample: Conv2d,
}

impl Fsrcnn {
    /// Builds the network with deterministic He-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics when any config field is zero.
    pub fn new(config: FsrcnnConfig) -> Self {
        assert!(
            config.features > 0 && config.shrink > 0 && config.mapping > 0 && config.scale > 0,
            "config fields must be nonzero"
        );
        let mut rng = SmallRng::seed_from_u64(0xf5ec_0a7e);
        let d = config.features;
        let s = config.shrink;
        Fsrcnn {
            extract: Conv2d::init(3, d, 5, &mut rng),
            shrink: Conv2d::init(d, s, 1, &mut rng),
            mapping: (0..config.mapping)
                .map(|_| Conv2d::init(s, s, 3, &mut rng))
                .collect(),
            expand: Conv2d::init(s, d, 1, &mut rng),
            upsample: Conv2d::init(d, 3 * config.scale * config.scale, 3, &mut rng),
            config,
        }
    }

    /// The architecture hyper-parameters.
    pub fn config(&self) -> FsrcnnConfig {
        self.config
    }

    /// Full forward pass: frame in, `scale`-times-larger frame out.
    pub fn forward(&self, frame: &Frame) -> Frame {
        let input = Tensor::from_frame(frame);
        let mut t = self.extract.forward(&input);
        relu(&mut t);
        let mut t = self.shrink.forward(&t);
        relu(&mut t);
        for conv in &self.mapping {
            t = conv.forward(&t);
            relu(&mut t);
        }
        let mut t = self.expand.forward(&t);
        relu(&mut t);
        let pre = self.upsample.forward(&t);
        pixel_shuffle(&pre, self.config.scale).to_frame()
    }

    /// Total multiply-accumulate count for an `h x w` input.
    pub fn macs_for_input(&self, width: usize, height: usize) -> u64 {
        let (h, w) = (height, width);
        let mut total = self.extract.macs(h, w) + self.shrink.macs(h, w);
        for conv in &self.mapping {
            total += conv.macs(h, w);
        }
        total + self.expand.macs(h, w) + self.upsample.macs(h, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edsr::{Edsr, EdsrConfig};

    fn tiny() -> Fsrcnn {
        Fsrcnn::new(FsrcnnConfig {
            features: 8,
            shrink: 4,
            mapping: 2,
            scale: 2,
        })
    }

    #[test]
    fn forward_shape_is_scaled() {
        let f = Frame::filled(7, 5, [90.0, 128.0, 128.0]);
        assert_eq!(tiny().forward(&f).size(), (14, 10));
    }

    #[test]
    fn forward_is_deterministic() {
        let f = Frame::filled(4, 4, [60.0, 120.0, 130.0]);
        assert_eq!(tiny().forward(&f), tiny().forward(&f));
    }

    #[test]
    fn fsrcnn_is_an_order_of_magnitude_cheaper_than_edsr() {
        let fsrcnn = Fsrcnn::new(FsrcnnConfig::default());
        let edsr = Edsr::new(EdsrConfig::default());
        let ratio = edsr.macs_for_input(300, 300) as f64 / fsrcnn.macs_for_input(300, 300) as f64;
        assert!(ratio > 10.0, "EDSR/FSRCNN MAC ratio {ratio:.1}");
    }

    #[test]
    fn macs_scale_linearly_with_pixels() {
        let m = tiny();
        assert_eq!(m.macs_for_input(20, 20), m.macs_for_input(10, 10) * 4);
    }

    #[test]
    fn scale_three_shapes() {
        let m = Fsrcnn::new(FsrcnnConfig {
            features: 8,
            shrink: 4,
            mapping: 1,
            scale: 3,
        });
        assert_eq!(
            m.forward(&Frame::filled(5, 4, [0.0, 128.0, 128.0])).size(),
            (15, 12)
        );
    }
}
