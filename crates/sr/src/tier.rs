//! The degradation ladder's SR model tiers.
//!
//! GameStreamSR's step-0 calibration benchmarks "the SR model of the
//! user's choice" — the platform timing model is parameterized on a MAC
//! cost *relative to* the calibrated EDSR (channels 64, blocks 16). The
//! resilience controller walks these tiers when the NPU thermal-throttles
//! or the link collapses: each tier trades reconstruction quality for a
//! proportionally cheaper NPU pass.

use crate::edsr::EdsrConfig;
use crate::neural::NeuralSrConfig;
use serde::{Deserialize, Serialize};

/// An SR model tier, ordered from most expensive/highest quality down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelTier {
    /// The paper's calibrated EDSR: 64 channels, 16 residual blocks.
    Edsr64,
    /// A slimmed EDSR with 16 channels (same depth) — ≈16× fewer MACs.
    Edsr16,
    /// FSRCNN (56/12/4) — two orders of magnitude cheaper than EDSR-64.
    Fsrcnn,
}

impl ModelTier {
    /// All tiers, most expensive first.
    pub const ALL: [ModelTier; 3] = [ModelTier::Edsr64, ModelTier::Edsr16, ModelTier::Fsrcnn];

    /// Kebab-case label for telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            ModelTier::Edsr64 => "edsr-64",
            ModelTier::Edsr16 => "edsr-16",
            ModelTier::Fsrcnn => "fsrcnn",
        }
    }

    /// Per-pixel MAC cost relative to the calibrated EDSR-64 — the ratio
    /// the platform timing model scales NPU latency by. The constants are
    /// the exact analytic MAC ratios of the architectures in this crate (a
    /// unit test pins them against `macs_for_input` of
    /// [`crate::edsr::Edsr`] / [`crate::fsrcnn::Fsrcnn`]).
    pub fn cost_ratio(self) -> f64 {
        match self {
            ModelTier::Edsr64 => 1.0,
            ModelTier::Edsr16 => 87_408.0 / 1_372_608.0,
            ModelTier::Fsrcnn => 16_776.0 / 1_372_608.0,
        }
    }

    /// The architecture config this tier's timing cost corresponds to,
    /// for MAC accounting.
    pub fn edsr_config(self) -> Option<EdsrConfig> {
        match self {
            ModelTier::Edsr64 => Some(EdsrConfig::default()),
            ModelTier::Edsr16 => Some(EdsrConfig {
                channels: 16,
                ..EdsrConfig::default()
            }),
            ModelTier::Fsrcnn => None,
        }
    }

    /// The functional proxy configuration for this tier at `scale`.
    ///
    /// The pixel pipeline models quality tiers by the depth of the
    /// iterative back-projection refinement: the calibrated EDSR proxy
    /// keeps the crate default (so tier [`ModelTier::Edsr64`] is
    /// byte-identical to [`NeuralSrConfig::default`] output), the slim
    /// EDSR refines once, and FSRCNN is interpolation-initialized only.
    pub fn proxy_config(self, scale: usize) -> NeuralSrConfig {
        let iterations = match self {
            ModelTier::Edsr64 => NeuralSrConfig::default().iterations,
            ModelTier::Edsr16 => 1,
            ModelTier::Fsrcnn => 0,
        };
        NeuralSrConfig {
            scale,
            iterations,
            ..NeuralSrConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edsr::Edsr;
    use crate::fsrcnn::{Fsrcnn, FsrcnnConfig};

    #[test]
    fn cost_ratios_match_the_architectures_mac_counts() {
        let edsr64 = Edsr::new(EdsrConfig::default()).macs_for_input(96, 96) as f64;
        let edsr16 =
            Edsr::new(ModelTier::Edsr16.edsr_config().unwrap()).macs_for_input(96, 96) as f64;
        let fsrcnn = Fsrcnn::new(FsrcnnConfig::default()).macs_for_input(96, 96) as f64;
        let check = |tier: ModelTier, measured: f64| {
            let err = (tier.cost_ratio() - measured).abs() / measured;
            assert!(
                err < 0.01,
                "{}: declared {:.5} vs measured {:.5}",
                tier.label(),
                tier.cost_ratio(),
                measured
            );
        };
        check(ModelTier::Edsr64, 1.0);
        check(ModelTier::Edsr16, edsr16 / edsr64);
        check(ModelTier::Fsrcnn, fsrcnn / edsr64);
    }

    #[test]
    fn tiers_are_strictly_cheaper_down_the_ladder() {
        let ratios: Vec<f64> = ModelTier::ALL.iter().map(|t| t.cost_ratio()).collect();
        assert!(ratios.windows(2).all(|w| w[1] < w[0]), "{ratios:?}");
        assert_eq!(ModelTier::Edsr64.cost_ratio(), 1.0);
    }

    #[test]
    fn top_tier_proxy_is_the_crate_default() {
        assert_eq!(ModelTier::Edsr64.proxy_config(2), NeuralSrConfig::default());
        assert_eq!(ModelTier::Edsr16.proxy_config(2).iterations, 1);
        assert_eq!(ModelTier::Fsrcnn.proxy_config(2).iterations, 0);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            ModelTier::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), ModelTier::ALL.len());
    }
}
