//! Minimal neural-network building blocks shared by the SR architectures:
//! CHW tensors, 2D convolutions of arbitrary odd kernel size, ReLU and
//! sub-pixel (pixel-shuffle) upsampling. Weights are deterministic He
//! initializations — see the crate docs for why quality measurements use
//! the classical proxy instead.

use gss_frame::{Frame, Plane};
use rand::rngs::SmallRng;
use rand::Rng;

/// A CHW `f32` activation tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A zero tensor.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        Tensor {
            channels,
            height,
            width,
            data: vec![0.0; channels * height * width],
        }
    }

    /// `(channels, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    #[inline]
    fn idx(&self, c: usize, y: usize, x: usize) -> usize {
        (c * self.height + y) * self.width + x
    }

    /// Sample accessor.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[self.idx(c, y, x)]
    }

    /// Mutable sample accessor.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        let i = self.idx(c, y, x);
        self.data[i] = v;
    }

    /// Raw data slice (CHW order).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice (CHW order).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Builds a 3-channel tensor from a frame, normalizing to roughly
    /// zero-mean range (`x/127.5 − 1`). Each channel owns a disjoint
    /// `h × w` slab of the CHW buffer, so the three fills run as
    /// [`gss_platform::pool`] bands with unchanged per-sample arithmetic.
    pub fn from_frame(frame: &Frame) -> Tensor {
        let (w, h) = frame.size();
        let mut t = Tensor::zeros(3, h, w);
        let planes = frame.planes();
        gss_platform::pool::for_each_band_mut(&mut t.data, h * w, |c, slab| {
            for (v, &s) in slab.iter_mut().zip(planes[c].as_slice()) {
                *v = s / 127.5 - 1.0;
            }
        });
        t
    }

    /// Converts a 3-channel tensor back to a frame (denormalizing).
    ///
    /// # Panics
    ///
    /// Panics when the tensor does not have exactly 3 channels.
    pub fn to_frame(&self) -> Frame {
        assert_eq!(self.channels, 3, "need 3 channels to build a frame");
        let mut planes = Vec::with_capacity(3);
        for c in 0..3 {
            let data = gss_platform::pool::build_rows(self.width, self.height, 0.0f32, |y, row| {
                for (x, v) in row.iter_mut().enumerate() {
                    *v = ((self.get(c, y, x) + 1.0) * 127.5).clamp(0.0, 255.0);
                }
            });
            planes.push(Plane::from_vec(self.width, self.height, data).expect("rows cover plane"));
        }
        let cr = planes.pop().expect("three planes");
        let cb = planes.pop().expect("three planes");
        let y = planes.pop().expect("three planes");
        Frame::from_planes(y, cb, cr).expect("planes share a size")
    }
}

/// A same-padding 2D convolution with an odd square kernel.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    /// `[out][in][ky][kx]` flattened.
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Conv2d {
    /// He-initialized layer drawn from a deterministic RNG.
    ///
    /// # Panics
    ///
    /// Panics when `kernel` is even or zero.
    pub fn init(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(kernel % 2 == 1 && kernel > 0, "kernel must be odd");
        let fan_in = (in_channels * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        let n = out_channels * in_channels * kernel * kernel;
        let weights = (0..n)
            .map(|_| {
                let u: f32 = (0..4).map(|_| rng.gen::<f32>()).sum::<f32>() / 4.0;
                (u - 0.5) * std * (12.0f32).sqrt() / 2.0
            })
            .collect();
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            weights,
            bias: vec![0.0; out_channels],
        }
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Overwrites the weight tensor (tests / hand-crafted kernels).
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn set_weights(&mut self, weights: Vec<f32>) {
        assert_eq!(
            weights.len(),
            self.out_channels * self.in_channels * self.kernel * self.kernel,
            "weight tensor length mismatch"
        );
        self.weights = weights;
    }

    #[inline]
    fn w(&self, o: usize, i: usize, ky: usize, kx: usize) -> f32 {
        self.weights[((o * self.in_channels + i) * self.kernel + ky) * self.kernel + kx]
    }

    /// Applies the convolution with zero padding.
    ///
    /// Output channels are independent and each owns a disjoint `h × w`
    /// slab of the CHW buffer, so they are computed in parallel through
    /// [`gss_platform::pool`]; the per-channel arithmetic is unchanged,
    /// keeping the activations bit-identical to a scalar pass at any
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics when the input channel count differs from the layer's.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.channels, self.in_channels, "channel mismatch");
        let (h, w) = (input.height, input.width);
        let half = (self.kernel / 2) as isize;
        let mut out = Tensor::zeros(self.out_channels, h, w);
        gss_platform::pool::for_each_band_mut(&mut out.data, h * w, |o, slab| {
            for y in 0..h {
                for x in 0..w {
                    let mut acc = self.bias[o];
                    for i in 0..self.in_channels {
                        for ky in 0..self.kernel {
                            let sy = y as isize + ky as isize - half;
                            if sy < 0 || sy >= h as isize {
                                continue;
                            }
                            for kx in 0..self.kernel {
                                let sx = x as isize + kx as isize - half;
                                if sx < 0 || sx >= w as isize {
                                    continue;
                                }
                                acc +=
                                    self.w(o, i, ky, kx) * input.get(i, sy as usize, sx as usize);
                            }
                        }
                    }
                    slab[y * w + x] = acc;
                }
            }
        });
        out
    }

    /// Multiply-accumulate operations for an `h x w` input.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        (self.out_channels * self.in_channels * self.kernel * self.kernel * h * w) as u64
    }
}

/// In-place ReLU.
pub fn relu(t: &mut Tensor) {
    for v in &mut t.data {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// `dst += src * scale`, element-wise.
///
/// # Panics
///
/// Panics on a shape mismatch (debug builds).
pub fn add_scaled(dst: &mut Tensor, src: &Tensor, scale: f32) {
    debug_assert_eq!(dst.shape(), src.shape());
    for (d, s) in dst.data.iter_mut().zip(src.data.iter()) {
        *d += s * scale;
    }
}

/// Rearranges `(C*r^2, H, W)` into `(C, H*r, W*r)` — sub-pixel convolution
/// upsampling.
///
/// # Panics
///
/// Panics when the channel count is not divisible by `r^2`.
pub fn pixel_shuffle(input: &Tensor, r: usize) -> Tensor {
    let r2 = r * r;
    assert_eq!(input.channels % r2, 0, "channels must divide r^2");
    let out_c = input.channels / r2;
    let mut out = Tensor::zeros(out_c, input.height * r, input.width * r);
    for c in 0..out_c {
        for y in 0..input.height {
            for x in 0..input.width {
                for dy in 0..r {
                    for dx in 0..r {
                        let src_c = c * r2 + dy * r + dx;
                        out.set(c, y * r + dy, x * r + dx, input.get(src_c, y, x));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut conv = Conv2d::init(1, 1, 3, &mut rng);
        let mut w = vec![0.0; 9];
        w[4] = 1.0;
        conv.set_weights(w);
        let mut input = Tensor::zeros(1, 3, 3);
        for (i, v) in input.as_mut_slice().iter_mut().enumerate() {
            *v = i as f32;
        }
        let out = conv.forward(&input);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn conv5_identity_kernel_passes_through() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut conv = Conv2d::init(1, 1, 5, &mut rng);
        let mut w = vec![0.0; 25];
        w[12] = 1.0;
        conv.set_weights(w);
        let mut input = Tensor::zeros(1, 4, 6);
        for (i, v) in input.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f32).sin();
        }
        let out = conv.forward(&input);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn macs_account_for_kernel_size() {
        let mut rng = SmallRng::seed_from_u64(1);
        let c3 = Conv2d::init(2, 4, 3, &mut rng);
        let c5 = Conv2d::init(2, 4, 5, &mut rng);
        assert_eq!(c3.macs(10, 10), 2 * 4 * 9 * 100);
        assert_eq!(c5.macs(10, 10), 2 * 4 * 25 * 100);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernels_rejected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = Conv2d::init(1, 1, 4, &mut rng);
    }

    #[test]
    fn pixel_shuffle_rearranges() {
        let mut t = Tensor::zeros(4, 1, 1);
        for c in 0..4 {
            t.set(c, 0, 0, c as f32);
        }
        let s = pixel_shuffle(&t, 2);
        assert_eq!(s.shape(), (1, 2, 2));
        assert_eq!(s.get(0, 0, 0), 0.0);
        assert_eq!(s.get(0, 0, 1), 1.0);
        assert_eq!(s.get(0, 1, 0), 2.0);
        assert_eq!(s.get(0, 1, 1), 3.0);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut t = Tensor::zeros(1, 1, 3);
        t.as_mut_slice().copy_from_slice(&[-1.0, 0.0, 2.0]);
        relu(&mut t);
        assert_eq!(t.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn tensor_frame_roundtrip() {
        let f = Frame::filled(5, 4, [63.75, 127.5, 191.25]);
        let t = Tensor::from_frame(&f);
        let back = t.to_frame();
        for (p, q) in f.planes().into_iter().zip(back.planes()) {
            for (&a, &b) in p.iter().zip(q.iter()) {
                assert!((a - b).abs() < 1e-3);
            }
        }
    }
}
