//! A from-scratch forward pass of the EDSR architecture (Lim et al.,
//! CVPRW'17), the SR model the paper deploys on the client NPU
//! (16 residual blocks, 64 channels, ×2 pixel-shuffle upsampling).
//!
//! Weights are deterministic He initializations — training is out of scope
//! for this reproduction (see `DESIGN.md`), so this module provides the
//! *computational* ground truth: layer shapes, multiply-accumulate counts
//! (which calibrate the platform model's NPU latency scaling), and a real
//! dataflow for the benchmarks. Quality measurements use
//! [`crate::NeuralSr`].
//!
//! ```
//! use gss_sr::edsr::{Edsr, EdsrConfig};
//! use gss_frame::Frame;
//!
//! let model = Edsr::new(EdsrConfig { channels: 8, blocks: 2, scale: 2 });
//! let lr = Frame::filled(8, 8, [100.0, 128.0, 128.0]);
//! let hr = model.forward(&lr);
//! assert_eq!(hr.size(), (16, 16));
//! ```

use crate::nn::{add_scaled, pixel_shuffle, relu, Conv2d, Tensor};
use gss_frame::Frame;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Architecture hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdsrConfig {
    /// Feature channels (paper: 64).
    pub channels: usize,
    /// Residual blocks (paper: 16).
    pub blocks: usize,
    /// Upscale factor (paper: 2).
    pub scale: usize,
}

impl Default for EdsrConfig {
    fn default() -> Self {
        EdsrConfig {
            channels: 64,
            blocks: 16,
            scale: 2,
        }
    }
}

/// The EDSR super-resolution network.
#[derive(Debug, Clone)]
pub struct Edsr {
    config: EdsrConfig,
    head: Conv2d,
    body: Vec<(Conv2d, Conv2d)>,
    body_tail: Conv2d,
    upsample: Conv2d,
    tail: Conv2d,
}

impl Edsr {
    /// Builds the network with deterministic He-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics when any config field is zero.
    pub fn new(config: EdsrConfig) -> Self {
        assert!(
            config.channels > 0 && config.blocks > 0 && config.scale > 0,
            "config fields must be nonzero"
        );
        let mut rng = SmallRng::seed_from_u64(0x5eed_ed5a);
        let c = config.channels;
        let head = Conv2d::init(3, c, 3, &mut rng);
        let body = (0..config.blocks)
            .map(|_| {
                (
                    Conv2d::init(c, c, 3, &mut rng),
                    Conv2d::init(c, c, 3, &mut rng),
                )
            })
            .collect();
        let body_tail = Conv2d::init(c, c, 3, &mut rng);
        let upsample = Conv2d::init(c, c * config.scale * config.scale, 3, &mut rng);
        let tail = Conv2d::init(c, 3, 3, &mut rng);
        Edsr {
            config,
            head,
            body,
            body_tail,
            upsample,
            tail,
        }
    }

    /// The architecture hyper-parameters.
    pub fn config(&self) -> EdsrConfig {
        self.config
    }

    /// Full forward pass: frame in, `scale`-times-larger frame out.
    pub fn forward(&self, frame: &Frame) -> Frame {
        let input = Tensor::from_frame(frame);
        let shallow = self.head.forward(&input);
        let mut features = shallow.clone();
        for (conv_a, conv_b) in &self.body {
            let mut t = conv_a.forward(&features);
            relu(&mut t);
            let t = conv_b.forward(&t);
            // EDSR residual scaling of 0.1 keeps untrained activations tame
            add_scaled(&mut features, &t, 0.1);
        }
        let mut deep = self.body_tail.forward(&features);
        add_scaled(&mut deep, &shallow, 1.0);
        let pre_shuffle = self.upsample.forward(&deep);
        let shuffled = pixel_shuffle(&pre_shuffle, self.config.scale);
        let out = self.tail.forward(&shuffled);
        out.to_frame()
    }

    /// Total multiply-accumulate count for an `h x w` input — the quantity
    /// the platform model scales NPU latency by.
    pub fn macs_for_input(&self, width: usize, height: usize) -> u64 {
        let (h, w) = (height, width);
        let s = self.config.scale;
        let mut total = self.head.macs(h, w);
        for (a, b) in &self.body {
            total += a.macs(h, w) + b.macs(h, w);
        }
        total += self.body_tail.macs(h, w);
        total += self.upsample.macs(h, w);
        total += self.tail.macs(h * s, w * s);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Edsr {
        Edsr::new(EdsrConfig {
            channels: 4,
            blocks: 2,
            scale: 2,
        })
    }

    #[test]
    fn forward_shape_is_scaled() {
        let m = tiny();
        let f = Frame::filled(6, 5, [90.0, 128.0, 128.0]);
        let hr = m.forward(&f);
        assert_eq!(hr.size(), (12, 10));
    }

    #[test]
    fn forward_is_deterministic() {
        let m1 = tiny();
        let m2 = tiny();
        let f = Frame::filled(4, 4, [10.0, 120.0, 130.0]);
        assert_eq!(m1.forward(&f), m2.forward(&f));
    }

    #[test]
    fn macs_scale_linearly_with_pixels() {
        let m = tiny();
        let a = m.macs_for_input(10, 10);
        let b = m.macs_for_input(20, 20);
        assert_eq!(b, a * 4);
    }

    #[test]
    fn paper_scale_model_macs_are_heavy() {
        // EDSR-16/64 at 720p should be on the order of 10^11 MACs —
        // the reason full-frame NPU SR misses 16.66 ms (Fig. 2/3).
        let m = Edsr::new(EdsrConfig::default());
        let macs = m.macs_for_input(1280, 720);
        assert!(macs > 50_000_000_000, "macs = {macs}");
    }
}
