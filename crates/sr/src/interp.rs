use crate::Upscaler;
use gss_frame::{Frame, Plane};
use serde::{Deserialize, Serialize};

/// Interpolation kernel families for traditional (non-DNN) resampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum InterpKernel {
    /// Nearest-neighbour (0-tap).
    Nearest,
    /// Bilinear — the paper's GPU `GL_LINEAR` path.
    Bilinear,
    /// Bicubic, Keys kernel with a = −0.5.
    Bicubic,
    /// Lanczos with a 3-lobe window.
    Lanczos3,
}

impl InterpKernel {
    /// Name used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            InterpKernel::Nearest => "nearest",
            InterpKernel::Bilinear => "bilinear",
            InterpKernel::Bicubic => "bicubic",
            InterpKernel::Lanczos3 => "lanczos3",
        }
    }

    /// Half-width of the kernel support in source pixels.
    const fn support(self) -> f32 {
        match self {
            InterpKernel::Nearest => 0.5,
            InterpKernel::Bilinear => 1.0,
            InterpKernel::Bicubic => 2.0,
            InterpKernel::Lanczos3 => 3.0,
        }
    }

    /// Kernel weight at (absolute) distance `t` from the sample center.
    fn weight(self, t: f32) -> f32 {
        let t = t.abs();
        match self {
            InterpKernel::Nearest => {
                if t < 0.5 {
                    1.0
                } else {
                    0.0
                }
            }
            InterpKernel::Bilinear => {
                if t < 1.0 {
                    1.0 - t
                } else {
                    0.0
                }
            }
            InterpKernel::Bicubic => keys_cubic(t, -0.5),
            InterpKernel::Lanczos3 => lanczos(t, 3.0),
        }
    }
}

fn keys_cubic(t: f32, a: f32) -> f32 {
    if t < 1.0 {
        (a + 2.0) * t * t * t - (a + 3.0) * t * t + 1.0
    } else if t < 2.0 {
        a * t * t * t - 5.0 * a * t * t + 8.0 * a * t - 4.0 * a
    } else {
        0.0
    }
}

fn lanczos(t: f32, a: f32) -> f32 {
    if t < f32::EPSILON {
        1.0
    } else if t < a {
        let pt = std::f32::consts::PI * t;
        a * pt.sin() * (pt / a).sin() / (pt * pt)
    } else {
        0.0
    }
}

/// Resamples a plane to `out_width x out_height` with the given kernel.
///
/// Sampling is center-aligned (output pixel centers map linearly onto source
/// pixel centers) and separable: a horizontal pass followed by a vertical
/// pass, which is how GPU texture filters and video scalers implement it.
/// Borders replicate.
///
/// # Panics
///
/// Panics when either output dimension is zero.
pub fn resize_plane(
    src: &Plane<f32>,
    out_width: usize,
    out_height: usize,
    kernel: InterpKernel,
) -> Plane<f32> {
    assert!(out_width > 0 && out_height > 0, "output must be nonzero");
    if (out_width, out_height) == src.size() {
        return src.clone();
    }
    let horizontal = resample_axis(src, out_width, kernel, Axis::X);
    resample_axis(&horizontal, out_height, kernel, Axis::Y)
}

#[derive(Clone, Copy)]
enum Axis {
    X,
    Y,
}

fn resample_axis(src: &Plane<f32>, out_len: usize, kernel: InterpKernel, axis: Axis) -> Plane<f32> {
    let (sw, sh) = src.size();
    let (src_len, other_len) = match axis {
        Axis::X => (sw, sh),
        Axis::Y => (sh, sw),
    };
    let scale = src_len as f32 / out_len as f32;
    // when minifying, widen the kernel to act as a low-pass filter
    let filter_scale = scale.max(1.0);
    let support = kernel.support() * filter_scale;

    // precompute per-output-coordinate taps
    let mut taps: Vec<(isize, Vec<f32>)> = Vec::with_capacity(out_len);
    for o in 0..out_len {
        let center = (o as f32 + 0.5) * scale - 0.5;
        let start = (center - support).ceil() as isize;
        let end = (center + support).floor() as isize;
        let mut weights = Vec::with_capacity((end - start + 1).max(1) as usize);
        let mut sum = 0.0f32;
        for i in start..=end {
            let w = kernel.weight((i as f32 - center) / filter_scale);
            weights.push(w);
            sum += w;
        }
        if sum.abs() < f32::EPSILON {
            // degenerate window (can happen for nearest at exact midpoints)
            weights = vec![1.0];
            taps.push(((center.round() as isize), weights));
        } else {
            for w in &mut weights {
                *w /= sum;
            }
            taps.push((start, weights));
        }
    }

    // output rows are independent, so they fill in parallel through the
    // deterministic pool (identical taps ⇒ bit-identical output at any
    // worker count)
    match axis {
        Axis::X => {
            let data = gss_platform::pool::build_rows(out_len, other_len, 0.0f32, |y, row| {
                for (ox, out) in row.iter_mut().enumerate() {
                    let (start, ws) = &taps[ox];
                    let mut acc = 0.0f32;
                    for (k, &w) in ws.iter().enumerate() {
                        acc += w * src.get_clamped(start + k as isize, y as isize);
                    }
                    *out = acc;
                }
            });
            Plane::from_vec(out_len, other_len, data).expect("row buffer matches plane size")
        }
        Axis::Y => {
            let data = gss_platform::pool::build_rows(other_len, out_len, 0.0f32, |oy, row| {
                let (start, ws) = &taps[oy];
                for (x, out) in row.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for (k, &w) in ws.iter().enumerate() {
                        acc += w * src.get_clamped(x as isize, start + k as isize);
                    }
                    *out = acc;
                }
            });
            Plane::from_vec(other_len, out_len, data).expect("row buffer matches plane size")
        }
    }
}

/// Resamples all three planes of a frame.
///
/// # Panics
///
/// Panics when either output dimension is zero.
pub fn resize_frame(
    src: &Frame,
    out_width: usize,
    out_height: usize,
    kernel: InterpKernel,
) -> Frame {
    src.map_planes(|p| resize_plane(p, out_width, out_height, kernel))
}

/// An [`Upscaler`] backed by one of the interpolation kernels.
///
/// `InterpUpscaler::new(InterpKernel::Bilinear, 2)` is the paper's GPU
/// fast path for the non-RoI region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterpUpscaler {
    kernel: InterpKernel,
    scale: usize,
}

impl InterpUpscaler {
    /// Creates an upscaler for the kernel and integer scale factor.
    ///
    /// # Panics
    ///
    /// Panics when `scale` is zero.
    pub fn new(kernel: InterpKernel, scale: usize) -> Self {
        assert!(scale > 0, "scale must be nonzero");
        InterpUpscaler { kernel, scale }
    }

    /// The kernel in use.
    pub const fn kernel(&self) -> InterpKernel {
        self.kernel
    }
}

impl Upscaler for InterpUpscaler {
    fn name(&self) -> &'static str {
        self.kernel.name()
    }

    fn scale(&self) -> usize {
        self.scale
    }

    fn upscale_plane(&self, plane: &Plane<f32>) -> Plane<f32> {
        resize_plane(
            plane,
            plane.width() * self.scale,
            plane.height() * self.scale,
            self.kernel,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: usize, h: usize) -> Plane<f32> {
        Plane::from_fn(w, h, |x, y| x as f32 * 2.0 + y as f32)
    }

    #[test]
    fn identity_resize_is_noop() {
        let p = gradient(8, 6);
        for k in [
            InterpKernel::Nearest,
            InterpKernel::Bilinear,
            InterpKernel::Bicubic,
            InterpKernel::Lanczos3,
        ] {
            assert_eq!(resize_plane(&p, 8, 6, k), p);
        }
    }

    #[test]
    fn constant_plane_stays_constant() {
        let p = Plane::filled(10, 10, 77.0f32);
        for k in [
            InterpKernel::Nearest,
            InterpKernel::Bilinear,
            InterpKernel::Bicubic,
            InterpKernel::Lanczos3,
        ] {
            let up = resize_plane(&p, 25, 17, k);
            for &v in up.iter() {
                assert!((v - 77.0).abs() < 1e-3, "{k:?}: {v}");
            }
        }
    }

    #[test]
    fn linear_ramp_is_reproduced_by_bilinear() {
        // bilinear interpolation reconstructs affine signals exactly
        // (away from replicated borders)
        let p = gradient(16, 16);
        let up = resize_plane(&p, 32, 32, InterpKernel::Bilinear);
        for y in 4..28 {
            for x in 4..28 {
                let sx = (x as f32 + 0.5) * 0.5 - 0.5;
                let sy = (y as f32 + 0.5) * 0.5 - 0.5;
                let expected = sx * 2.0 + sy;
                assert!(
                    (up.get(x, y) - expected).abs() < 1e-3,
                    "({x},{y}): {} vs {expected}",
                    up.get(x, y)
                );
            }
        }
    }

    #[test]
    fn nearest_only_copies_source_values() {
        let p = Plane::from_fn(4, 4, |x, y| (y * 4 + x) as f32);
        let up = resize_plane(&p, 12, 12, InterpKernel::Nearest);
        for &v in up.iter() {
            assert_eq!(v, v.round());
            assert!((0.0..=15.0).contains(&v));
        }
    }

    #[test]
    fn downscale_acts_as_low_pass() {
        // alternating columns: naive point sampling would alias badly;
        // a widened kernel averages towards the mean
        let p = Plane::from_fn(32, 8, |x, _| if x % 2 == 0 { 0.0 } else { 200.0 });
        let down = resize_plane(&p, 8, 8, InterpKernel::Bilinear);
        for &v in down.iter() {
            assert!((v - 100.0).abs() < 30.0, "aliased: {v}");
        }
    }

    #[test]
    fn upscaler_scales_dimensions() {
        let u = InterpUpscaler::new(InterpKernel::Bicubic, 3);
        let f = Frame::new(10, 6);
        assert_eq!(u.upscale(&f).size(), (30, 18));
        assert_eq!(u.scale(), 3);
        assert_eq!(u.name(), "bicubic");
    }

    #[test]
    fn kernels_partition_unity_near_center() {
        // weights are normalized per-tap; check interpolation of a constant
        // through the raw kernel path at fractional offsets
        for k in [InterpKernel::Bicubic, InterpKernel::Lanczos3] {
            let p = Plane::filled(20, 1, 1.0f32);
            let up = resize_plane(&p, 33, 1, k);
            for &v in up.iter() {
                assert!((v - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn bicubic_sharper_than_bilinear_on_edge() {
        // step edge: bicubic should overshoot/retain contrast more than bilinear
        let p = Plane::from_fn(16, 16, |x, _| if x < 8 { 0.0 } else { 255.0 });
        let bl = resize_plane(&p, 32, 32, InterpKernel::Bilinear);
        let bc = resize_plane(&p, 32, 32, InterpKernel::Bicubic);
        // measure edge transition width: count samples strictly between 10 and 245
        let trans = |pl: &Plane<f32>| {
            pl.row(16)
                .iter()
                .filter(|&&v| v > 10.0 && v < 245.0)
                .count()
        };
        assert!(trans(&bc) <= trans(&bl));
    }
}
