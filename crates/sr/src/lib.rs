//! Super-resolution upscalers for the GameStreamSR reproduction.
//!
//! Three families of upscalers, mirroring the systems in the paper:
//!
//! * **Interpolation** ([`InterpKernel`], [`InterpUpscaler`],
//!   [`resize_plane`]) — nearest, bilinear, bicubic (Keys a = −0.5) and
//!   Lanczos-3 resamplers. Bilinear is what the paper runs on the mobile GPU
//!   (`GL_LINEAR`) for the non-RoI region and what NEMO applies to motion
//!   vectors and residuals; bicubic/lanczos appear in the paper's future-work
//!   decoder extension (§VI).
//! * **DNN forward passes** ([`edsr`], [`fsrcnn`], shared blocks in
//!   [`nn`]) — from-scratch implementations of the EDSR-16/64 architecture
//!   the paper deploys (conv3x3, residual blocks, pixel shuffle) and the
//!   lightweight FSRCNN alternative (the paper's design is model-agnostic:
//!   the client benchmarks "the SR model of the user's choice"). Weights
//!   are deterministic He initializations: the forward passes give honest
//!   *computational* structure (layer shapes, MAC counts feeding the
//!   platform model) but untrained weights cannot give trained quality,
//!   which is why quality measurements use the proxy below. See
//!   `DESIGN.md` § substitutions.
//! * **Neural-quality proxy** ([`NeuralSr`]) — bicubic initialization
//!   followed by iterative back-projection against the degradation operator,
//!   plus a light detail-restoration pass. A classical SR algorithm that
//!   consistently out-performs bilinear/bicubic in PSNR, preserving the
//!   paper's quality ordering (DNN > bicubic > bilinear).
//!
//! ```
//! use gss_frame::Frame;
//! use gss_sr::{InterpKernel, InterpUpscaler, Upscaler};
//!
//! let lr = Frame::filled(16, 9, [120.0, 128.0, 128.0]);
//! let up = InterpUpscaler::new(InterpKernel::Bilinear, 2);
//! let hr = up.upscale(&lr);
//! assert_eq!(hr.size(), (32, 18));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edsr;
pub mod fsrcnn;
mod interp;
mod neural;
pub mod nn;
mod tier;

pub use interp::{resize_frame, resize_plane, InterpKernel, InterpUpscaler};
pub use neural::{NeuralSr, NeuralSrConfig};
pub use tier::ModelTier;

use gss_frame::{Frame, Plane};

/// A frame upscaler with a fixed integer scale factor.
///
/// Implementations treat the three YCbCr planes independently.
pub trait Upscaler {
    /// Human-readable method name for reports ("bilinear", "edsr-proxy", …).
    fn name(&self) -> &'static str;

    /// Integer scale factor (2 in the paper's deployment).
    fn scale(&self) -> usize;

    /// Upscales a single plane by [`Upscaler::scale`].
    fn upscale_plane(&self, plane: &Plane<f32>) -> Plane<f32>;

    /// Upscales all three planes of a frame.
    fn upscale(&self, frame: &Frame) -> Frame {
        frame.map_planes(|p| self.upscale_plane(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_are_usable() {
        let ups: Vec<Box<dyn Upscaler>> = vec![
            Box::new(InterpUpscaler::new(InterpKernel::Nearest, 2)),
            Box::new(InterpUpscaler::new(InterpKernel::Bilinear, 2)),
            Box::new(NeuralSr::new(NeuralSrConfig::default())),
        ];
        let f = Frame::filled(16, 16, [42.0, 128.0, 128.0]);
        for u in &ups {
            let hr = u.upscale(&f);
            assert_eq!(hr.size(), (32, 32), "{}", u.name());
        }
    }
}
