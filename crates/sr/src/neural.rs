use crate::{resize_plane, InterpKernel, Upscaler};
use gss_frame::Plane;

/// Configuration of the neural-quality proxy upscaler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeuralSrConfig {
    /// Integer scale factor (paper deployment: 2).
    pub scale: usize,
    /// Back-projection iterations; each enforces consistency with the
    /// low-resolution observation under the box degradation operator.
    pub iterations: usize,
    /// Step size of the back-projection correction.
    pub damping: f32,
    /// Strength of the final detail-restoration (unsharp) pass; `0.0`
    /// disables it.
    pub sharpen: f32,
}

impl Default for NeuralSrConfig {
    fn default() -> Self {
        NeuralSrConfig {
            scale: 2,
            iterations: 2,
            damping: 0.5,
            sharpen: 0.0,
        }
    }
}

/// Quality proxy for a *trained* DNN super-resolution model.
///
/// We cannot ship trained EDSR weights (see `DESIGN.md`), so quality-bearing
/// paths use this classical pipeline instead: bicubic initialization,
/// iterative back-projection (Irani & Peleg) against the box downsampling
/// operator the simulated server applies, and a light unsharp detail pass.
/// Its PSNR consistently dominates bilinear and bicubic interpolation —
/// preserving the quality *ordering* the paper's results rest on — while the
/// [`crate::edsr`] module supplies the true computational cost structure.
///
/// ```
/// use gss_frame::Frame;
/// use gss_sr::{NeuralSr, NeuralSrConfig, Upscaler};
///
/// let sr = NeuralSr::new(NeuralSrConfig::default());
/// let lr = Frame::filled(12, 12, [64.0, 128.0, 128.0]);
/// assert_eq!(sr.upscale(&lr).size(), (24, 24));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeuralSr {
    config: NeuralSrConfig,
}

impl NeuralSr {
    /// Creates the proxy with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when `scale` is zero.
    pub fn new(config: NeuralSrConfig) -> Self {
        assert!(config.scale > 0, "scale must be nonzero");
        NeuralSr { config }
    }

    /// The active configuration.
    pub fn config(&self) -> NeuralSrConfig {
        self.config
    }
}

impl Default for NeuralSr {
    fn default() -> Self {
        NeuralSr::new(NeuralSrConfig::default())
    }
}

impl Upscaler for NeuralSr {
    fn name(&self) -> &'static str {
        "edsr-proxy"
    }

    fn scale(&self) -> usize {
        self.config.scale
    }

    fn upscale_plane(&self, plane: &Plane<f32>) -> Plane<f32> {
        let s = self.config.scale;
        let (lw, lh) = plane.size();
        let (hw, hh) = (lw * s, lh * s);

        // 1. bicubic initialization
        let mut estimate = resize_plane(plane, hw, hh, InterpKernel::Bicubic);

        // 2. iterative back-projection against the box degradation operator
        for _ in 0..self.config.iterations {
            let simulated_lr = estimate.downsample_box(s);
            let residual = plane
                .zip_map(&simulated_lr, |obs, sim| obs - sim)
                .expect("downsample restores LR size");
            let residual_hr = resize_plane(&residual, hw, hh, InterpKernel::Bicubic);
            estimate = estimate
                .zip_map(&residual_hr, |e, r| e + self.config.damping * r)
                .expect("sizes match");
        }

        // 3. detail restoration: mild unsharp mask approximating the
        //    high-frequency hallucination of a trained network
        if self.config.sharpen > 0.0 {
            let k = self.config.sharpen;
            let blurred = box3(&estimate);
            estimate = estimate
                .zip_map(&blurred, |e, b| e + k * (e - b))
                .expect("sizes match");
        }
        estimate.clamp_in_place(0.0, 255.0);
        estimate
    }
}

fn box3(p: &Plane<f32>) -> Plane<f32> {
    let (w, h) = p.size();
    let data = gss_platform::pool::build_rows(w, h, 0.0f32, |y, row| {
        for (x, out) in row.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    acc += p.get_clamped(x as isize + dx, y as isize + dy);
                }
            }
            *out = acc / 9.0;
        }
    });
    Plane::from_vec(w, h, data).expect("row buffer matches plane size")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InterpUpscaler;
    use gss_frame::Frame;
    use gss_metrics::psnr_planes;

    /// A detailed synthetic scene: edges, texture and smooth shading, the
    /// mix a rendered game frame contains.
    fn scene(w: usize, h: usize) -> Plane<f32> {
        Plane::from_fn(w, h, |x, y| {
            let fx = x as f32;
            let fy = y as f32;
            let stripes = if ((fx / 7.0).floor() as i32 + (fy / 5.0).floor() as i32) % 2 == 0 {
                60.0
            } else {
                190.0
            };
            let texture = 25.0 * ((fx * 0.8).sin() * (fy * 0.6).cos());
            let shading = 0.2 * fx + 0.1 * fy;
            (stripes + texture + shading).clamp(0.0, 255.0)
        })
    }

    #[test]
    fn beats_bilinear_and_bicubic_on_downsampled_content() {
        let hr = scene(96, 96);
        let lr = hr.downsample_box(2);
        let neural = NeuralSr::default().upscale_plane(&lr);
        let bilinear = InterpUpscaler::new(InterpKernel::Bilinear, 2).upscale_plane(&lr);
        let bicubic = InterpUpscaler::new(InterpKernel::Bicubic, 2).upscale_plane(&lr);
        let p_n = psnr_planes(&hr, &neural).unwrap();
        let p_bl = psnr_planes(&hr, &bilinear).unwrap();
        let p_bc = psnr_planes(&hr, &bicubic).unwrap();
        assert!(p_n > p_bc, "neural {p_n:.2} <= bicubic {p_bc:.2}");
        assert!(p_bc > p_bl, "bicubic {p_bc:.2} <= bilinear {p_bl:.2}");
        assert!(
            p_n - p_bl > 0.8,
            "gain over bilinear only {:.2} dB",
            p_n - p_bl
        );
    }

    #[test]
    fn back_projection_improves_lr_consistency() {
        let hr = scene(64, 64);
        let lr = hr.downsample_box(2);
        let no_ibp = NeuralSr::new(NeuralSrConfig {
            iterations: 0,
            sharpen: 0.0,
            ..NeuralSrConfig::default()
        });
        let with_ibp = NeuralSr::new(NeuralSrConfig {
            iterations: 6,
            damping: 0.9,
            sharpen: 0.0,
            ..NeuralSrConfig::default()
        });
        let consistency = |up: &Plane<f32>| {
            let sim = up.downsample_box(2);
            lr.zip_map(&sim, |a, b| (a - b).abs()).unwrap().mean()
        };
        let e0 = consistency(&no_ibp.upscale_plane(&lr));
        let e1 = consistency(&with_ibp.upscale_plane(&lr));
        assert!(e1 < e0 * 0.2, "IBP residual {e1} vs init {e0}");
    }

    #[test]
    fn output_stays_in_valid_range() {
        let lr = Plane::from_fn(16, 16, |x, y| if (x + y) % 2 == 0 { 0.0 } else { 255.0 });
        let up = NeuralSr::default().upscale_plane(&lr);
        let (lo, hi) = up.min_max();
        assert!(lo >= 0.0 && hi <= 255.0);
    }

    #[test]
    fn constant_input_remains_constant() {
        let lr = Plane::filled(12, 12, 99.0f32);
        let up = NeuralSr::default().upscale_plane(&lr);
        for &v in up.iter() {
            assert!((v - 99.0).abs() < 0.5, "{v}");
        }
    }

    #[test]
    fn frame_upscale_size() {
        let f = Frame::new(10, 8);
        assert_eq!(NeuralSr::default().upscale(&f).size(), (20, 16));
    }

    #[test]
    fn scale_three_works() {
        let cfg = NeuralSrConfig {
            scale: 3,
            ..NeuralSrConfig::default()
        };
        let hr = scene(90, 90);
        let lr = hr.downsample_box(3);
        let up = NeuralSr::new(cfg).upscale_plane(&lr);
        assert_eq!(up.size(), (90, 90));
        let p = psnr_planes(&hr, &up).unwrap();
        let p_bl = psnr_planes(
            &hr,
            &InterpUpscaler::new(InterpKernel::Bilinear, 3).upscale_plane(&lr),
        )
        .unwrap();
        assert!(p > p_bl);
    }
}
