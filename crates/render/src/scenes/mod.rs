//! The ten game workloads of the paper's Table I, as deterministic
//! procedural scenes.
//!
//! Each generator builds a world whose composition matches its genre's
//! visual structure — first/third-person perspective, a near focal object,
//! mid-ground scenery and a distant backdrop — plus a scripted camera path
//! standing in for recorded player input. Seeds are fixed per game, so every
//! run of every experiment sees identical frames.

mod worlds;

use crate::camera::CameraPath;
use crate::raster::{render, RenderOutput};
use crate::scene::Scene;
use serde::{Deserialize, Serialize};

/// Identifier of a game workload (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GameId {
    /// Metro Exodus — first-person shooter.
    G1,
    /// Far Cry 5 — third-person shooter.
    G2,
    /// The Witcher 3 — role playing.
    G3,
    /// Red Dead Redemption 2 — action.
    G4,
    /// Grand Theft Auto V — adventure.
    G5,
    /// God of War — action-adventure.
    G6,
    /// Shadow of the Tomb Raider — survival.
    G7,
    /// A Plague Tale: Requiem — stealth.
    G8,
    /// Farming Simulator 22 — simulation.
    G9,
    /// Forza Horizon 5 — racing.
    G10,
}

impl GameId {
    /// All ten workloads in paper order.
    pub const ALL: [GameId; 10] = [
        GameId::G1,
        GameId::G2,
        GameId::G3,
        GameId::G4,
        GameId::G5,
        GameId::G6,
        GameId::G7,
        GameId::G8,
        GameId::G9,
        GameId::G10,
    ];

    /// The game title the workload stands in for.
    pub const fn title(self) -> &'static str {
        match self {
            GameId::G1 => "Metro Exodus",
            GameId::G2 => "Far Cry 5",
            GameId::G3 => "Witcher 3",
            GameId::G4 => "Red Dead Redemption 2",
            GameId::G5 => "Grand Theft Auto V",
            GameId::G6 => "God of War",
            GameId::G7 => "Shadow of the Tomb Raider",
            GameId::G8 => "A Plague Tale: Requiem",
            GameId::G9 => "Farming Simulator 22",
            GameId::G10 => "Forza Horizon 5",
        }
    }

    /// Genre per the paper's Table I.
    pub const fn genre(self) -> &'static str {
        match self {
            GameId::G1 => "First Person Shooter",
            GameId::G2 => "Third Person Shooter",
            GameId::G3 => "Role playing",
            GameId::G4 => "Action",
            GameId::G5 => "Adventure",
            GameId::G6 => "Action-adventure",
            GameId::G7 => "Survival",
            GameId::G8 => "Stealth",
            GameId::G9 => "Simulation",
            GameId::G10 => "Racing",
        }
    }

    /// Short label ("G1".."G10").
    pub const fn label(self) -> &'static str {
        match self {
            GameId::G1 => "G1",
            GameId::G2 => "G2",
            GameId::G3 => "G3",
            GameId::G4 => "G4",
            GameId::G5 => "G5",
            GameId::G6 => "G6",
            GameId::G7 => "G7",
            GameId::G8 => "G8",
            GameId::G9 => "G9",
            GameId::G10 => "G10",
        }
    }

    /// Deterministic RNG seed for the workload's procedural content.
    const fn seed(self) -> u64 {
        match self {
            GameId::G1 => 0x6a11,
            GameId::G2 => 0x6a12,
            GameId::G3 => 0x6a13,
            GameId::G4 => 0x6a14,
            GameId::G5 => 0x6a15,
            GameId::G6 => 0x6a16,
            GameId::G7 => 0x6a17,
            GameId::G8 => 0x6a18,
            GameId::G9 => 0x6a19,
            GameId::G10 => 0x6a1a,
        }
    }
}

impl std::fmt::Display for GameId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.label(), self.title())
    }
}

/// A renderable game workload: static world + scripted camera.
#[derive(Debug, Clone)]
pub struct GameWorkload {
    id: GameId,
    scene: Scene,
    path: CameraPath,
}

impl GameWorkload {
    /// Builds the workload for a game; deterministic for a given id.
    pub fn new(id: GameId) -> Self {
        let (scene, path) = worlds::build(id);
        GameWorkload { id, scene, path }
    }

    /// The workload's id.
    pub fn id(&self) -> GameId {
        self.id
    }

    /// The static world.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// The camera script.
    pub fn path(&self) -> &CameraPath {
        &self.path
    }

    /// Renders frame `t` of the session at the given resolution, producing
    /// the color frame and its depth buffer.
    pub fn render_frame(&self, t: usize, width: usize, height: usize) -> RenderOutput {
        let camera = self.path.camera_at(t);
        render(&self.scene, &camera, width, height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_games_render() {
        for id in GameId::ALL {
            let w = GameWorkload::new(id);
            let out = w.render_frame(0, 96, 54);
            assert_eq!(out.frame.size(), (96, 54), "{id}");
            // every scene must put some geometry in view
            let drawn = out.depth.plane().iter().filter(|&&d| d < 1.0).count();
            assert!(drawn > 96 * 54 / 4, "{id}: only {drawn} covered pixels");
        }
    }

    #[test]
    fn scenes_have_near_and_far_content() {
        // the depth-guided RoI premise requires a foreground/background split
        for id in GameId::ALL {
            let w = GameWorkload::new(id);
            let out = w.render_frame(0, 96, 54);
            let mut depths: Vec<f32> = out
                .depth
                .plane()
                .iter()
                .copied()
                .filter(|&d| d < 1.0)
                .collect();
            depths.sort_by(f32::total_cmp);
            let p10 = depths[depths.len() / 10];
            let p90 = depths[depths.len() * 9 / 10];
            let near = depths.iter().filter(|&&d| d < 0.05).count();
            assert!(near > 100, "{id}: near {near}");
            assert!(p90 > 3.0 * p10, "{id}: p10 {p10} p90 {p90}");
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = GameWorkload::new(GameId::G3).render_frame(7, 64, 36);
        let b = GameWorkload::new(GameId::G3).render_frame(7, 64, 36);
        assert_eq!(a.frame, b.frame);
        assert_eq!(a.depth, b.depth);
    }

    #[test]
    fn camera_moves_over_time() {
        for id in GameId::ALL {
            let w = GameWorkload::new(id);
            let a = w.render_frame(0, 64, 36);
            let b = w.render_frame(30, 64, 36);
            assert_ne!(a.frame, b.frame, "{id}: static camera");
        }
    }

    #[test]
    fn labels_and_titles_are_unique() {
        let mut titles: Vec<_> = GameId::ALL.iter().map(|g| g.title()).collect();
        titles.sort_unstable();
        titles.dedup();
        assert_eq!(titles.len(), 10);
    }

    #[test]
    fn display_joins_label_and_title() {
        assert_eq!(GameId::G3.to_string(), "G3 (Witcher 3)");
    }
}
