//! World builders for the ten game workloads.
//!
//! Shared vocabulary: the camera starts near the origin at eye height and
//! travels into −Z. Each genre composes the same ingredients differently —
//! ground, buildings, vegetation, rock, plus a camera-attached "hero" mesh
//! (weapon / character / vehicle) that keeps a near object in the frame
//! center the way real gameplay does.

use crate::camera::CameraPath;
use crate::math::{vec3, Vec3};
use crate::mesh::Mesh;
use crate::scene::{Object, Scene};
use crate::texture::ProceduralTexture;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::GameId;

/// Builds the static scene and camera script for a game.
pub(super) fn build(id: GameId) -> (Scene, CameraPath) {
    match id {
        GameId::G1 => metro_corridor(id.seed()),
        GameId::G2 => outdoor_tps(id.seed()),
        GameId::G3 => village_rpg(id.seed()),
        GameId::G4 => frontier_plains(id.seed()),
        GameId::G5 => city_streets(id.seed()),
        GameId::G6 => rocky_arena(id.seed()),
        GameId::G7 => cave_survival(id.seed()),
        GameId::G8 => alley_stealth(id.seed()),
        GameId::G9 => farmland(id.seed()),
        GameId::G10 => race_track(id.seed()),
    }
}

// ---------------------------------------------------------------- textures

fn tex_ground(seed: u64) -> ProceduralTexture {
    ProceduralTexture::Noise {
        base: [96.0, 104.0, 72.0],
        amplitude: 0.45,
        octaves: 5,
        frequency: 6.0,
        seed,
    }
}

fn tex_rock(seed: u64) -> ProceduralTexture {
    ProceduralTexture::Noise {
        base: [118.0, 112.0, 104.0],
        amplitude: 0.5,
        octaves: 5,
        frequency: 4.0,
        seed,
    }
}

fn tex_wall(seed: u64) -> ProceduralTexture {
    ProceduralTexture::Bricks {
        brick: [146.0, 92.0, 70.0],
        mortar: [198.0, 196.0, 188.0],
        scale: 7.0,
        seed,
    }
}

fn tex_metal() -> ProceduralTexture {
    ProceduralTexture::Checker {
        a: [92.0, 96.0, 104.0],
        b: [58.0, 60.0, 66.0],
        scale: 9.0,
    }
}

fn tex_foliage(seed: u64) -> ProceduralTexture {
    ProceduralTexture::Noise {
        base: [58.0, 112.0, 50.0],
        amplitude: 0.55,
        octaves: 4,
        frequency: 8.0,
        seed,
    }
}

fn tex_cloth(seed: u64) -> ProceduralTexture {
    ProceduralTexture::Noise {
        base: [150.0, 60.0, 48.0],
        amplitude: 0.35,
        octaves: 4,
        frequency: 10.0,
        seed,
    }
}

fn tex_asphalt(seed: u64) -> ProceduralTexture {
    ProceduralTexture::Noise {
        base: [72.0, 72.0, 76.0],
        amplitude: 0.35,
        octaves: 5,
        frequency: 9.0,
        seed,
    }
}

// ------------------------------------------------------------- mesh pieces

/// A tree: trunk cuboid + pyramid canopy.
fn tree(at: Vec3, scale: f32, mesh_trunk: &mut Mesh, mesh_canopy: &mut Mesh) {
    let trunk = Mesh::cuboid(
        at + vec3(-0.18 * scale, 0.0, -0.18 * scale),
        at + vec3(0.18 * scale, 1.6 * scale, 0.18 * scale),
        2.0,
    );
    mesh_trunk.merge(&trunk);
    let canopy = Mesh::pyramid(at + vec3(0.0, 1.2 * scale, 0.0), 1.1 * scale, 2.4 * scale);
    mesh_canopy.merge(&canopy);
}

/// A building block with optional pyramid roof.
fn building(at: Vec3, size: Vec3, roof: bool, walls: &mut Mesh, roofs: &mut Mesh) {
    let b = Mesh::cuboid(
        at + vec3(-size.x * 0.5, 0.0, -size.z * 0.5),
        at + vec3(size.x * 0.5, size.y, size.z * 0.5),
        3.0,
    );
    walls.merge(&b);
    if roof {
        roofs.merge(&Mesh::pyramid(
            at + vec3(0.0, size.y, 0.0),
            size.x.max(size.z) * 0.55,
            size.y * 0.45,
        ));
    }
}

/// A blocky humanoid figure standing at `at` (camera- or world-space).
fn humanoid(at: Vec3, scale: f32) -> Mesh {
    let mut m = Mesh::new();
    // torso
    m.merge(&Mesh::cuboid(
        at + vec3(-0.28, 0.7, -0.16) * scale,
        at + vec3(0.28, 1.45, 0.16) * scale,
        2.0,
    ));
    // head
    m.merge(&Mesh::cuboid(
        at + vec3(-0.15, 1.45, -0.15) * scale,
        at + vec3(0.15, 1.75, 0.15) * scale,
        1.0,
    ));
    // legs
    m.merge(&Mesh::cuboid(
        at + vec3(-0.26, 0.0, -0.12) * scale,
        at + vec3(-0.05, 0.7, 0.12) * scale,
        1.0,
    ));
    m.merge(&Mesh::cuboid(
        at + vec3(0.05, 0.0, -0.12) * scale,
        at + vec3(0.26, 0.7, 0.12) * scale,
        1.0,
    ));
    // arms
    m.merge(&Mesh::cuboid(
        at + vec3(-0.45, 0.75, -0.1) * scale,
        at + vec3(-0.28, 1.4, 0.1) * scale,
        1.0,
    ));
    m.merge(&Mesh::cuboid(
        at + vec3(0.28, 0.75, -0.1) * scale,
        at + vec3(0.45, 1.4, 0.1) * scale,
        1.0,
    ));
    m
}

/// A blocky vehicle (car/tractor) centered at `at`.
fn vehicle(at: Vec3, scale: f32) -> Mesh {
    let mut m = Mesh::new();
    // body
    m.merge(&Mesh::cuboid(
        at + vec3(-0.9, 0.25, -1.9) * scale,
        at + vec3(0.9, 0.85, 1.9) * scale,
        3.0,
    ));
    // cabin
    m.merge(&Mesh::cuboid(
        at + vec3(-0.7, 0.85, -0.9) * scale,
        at + vec3(0.7, 1.4, 0.7) * scale,
        2.0,
    ));
    // wheels
    for (wx, wz) in [(-0.95, -1.2), (0.95, -1.2), (-0.95, 1.2), (0.95, 1.2)] {
        m.merge(&Mesh::cuboid(
            at + vec3(wx - 0.12, 0.0, wz - 0.35) * scale,
            at + vec3(wx + 0.12, 0.55, wz + 0.35) * scale,
            1.0,
        ));
    }
    m
}

fn eye_path(start: Vec3, yaw0: f32) -> CameraPath {
    CameraPath {
        pitch: -0.05,
        ..CameraPath::stationary(start, yaw0)
    }
}

// ----------------------------------------------------------------- worlds

/// G1 — Metro Exodus: a dim tunnel with pillars and a first-person weapon.
fn metro_corridor(seed: u64) -> (Scene, CameraPath) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scene = Scene::new();
    scene.sky_color = [52.0, 50.0, 58.0];
    scene.ambient = 0.45;
    scene.fog_density = 0.012;

    // floor and ceiling
    scene = scene
        .with(Object::world(
            Mesh::ground(0.0, 120.0, 24, 3.0),
            tex_asphalt(seed),
        ))
        .with(Object::world(
            {
                let mut m = Mesh::new();
                m.merge(&Mesh::cuboid(
                    vec3(-6.0, 5.0, -120.0),
                    vec3(6.0, 5.6, 10.0),
                    16.0,
                ));
                m
            },
            tex_metal(),
        ));
    // tunnel walls
    let mut walls = Mesh::new();
    walls.merge(&Mesh::cuboid(
        vec3(-6.6, 0.0, -120.0),
        vec3(-6.0, 5.0, 10.0),
        20.0,
    ));
    walls.merge(&Mesh::cuboid(
        vec3(6.0, 0.0, -120.0),
        vec3(6.6, 5.0, 10.0),
        20.0,
    ));
    scene = scene.with(Object::world(walls, tex_wall(seed)));
    // pillars + crates along the tunnel
    let mut pillars = Mesh::new();
    let mut crates = Mesh::new();
    for i in 0..14 {
        let z = -6.0 - i as f32 * 8.0;
        pillars.merge(&Mesh::cuboid(
            vec3(-5.6, 0.0, z - 0.4),
            vec3(-4.9, 5.0, z + 0.4),
            4.0,
        ));
        pillars.merge(&Mesh::cuboid(
            vec3(4.9, 0.0, z - 0.4),
            vec3(5.6, 5.0, z + 0.4),
            4.0,
        ));
        if rng.gen_bool(0.6) {
            let cx = rng.gen_range(-3.5..3.5);
            let s = rng.gen_range(0.5..1.2);
            crates.merge(&Mesh::cuboid(
                vec3(cx - s, 0.0, z - s),
                vec3(cx + s, 2.0 * s, z + s),
                2.0,
            ));
        }
    }
    scene = scene
        .with(Object::world(pillars, tex_metal()))
        .with(Object::world(crates, tex_rock(seed ^ 1)));
    // first-person weapon at bottom center-right
    let weapon = Mesh::cuboid(vec3(0.12, -0.62, -1.75), vec3(0.42, -0.32, -0.65), 5.0);
    scene = scene.with(Object::camera_relative(weapon, tex_metal()));

    let path = CameraPath {
        velocity: vec3(0.0, 0.0, -0.11),
        bob_amplitude: 0.035,
        bob_frequency: 0.21,
        sway_amplitude: 0.05,
        sway_frequency: 0.045,
        far: 200.0,
        ..eye_path(vec3(0.0, 1.7, 4.0), 0.0)
    };
    (scene, path)
}

/// G2 — Far Cry 5: open hills, trees, a third-person character ahead.
fn outdoor_tps(seed: u64) -> (Scene, CameraPath) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scene = Scene::new();
    scene = scene.with(Object::world(
        Mesh::ground(0.0, 200.0, 24, 4.0),
        tex_ground(seed),
    ));
    let mut trunks = Mesh::new();
    let mut canopies = Mesh::new();
    for _ in 0..60 {
        let x = rng.gen_range(-80.0..80.0f32);
        let z = rng.gen_range(-160.0..-6.0f32);
        if x.abs() < 3.0 {
            continue; // keep the lane ahead clear
        }
        tree(
            vec3(x, 0.0, z),
            rng.gen_range(0.8..2.2),
            &mut trunks,
            &mut canopies,
        );
    }
    let mut rocks = Mesh::new();
    for _ in 0..25 {
        let x = rng.gen_range(-60.0..60.0f32);
        let z = rng.gen_range(-140.0..-10.0f32);
        let s = rng.gen_range(0.4..1.6);
        rocks.merge(&Mesh::cuboid(
            vec3(x - s, 0.0, z - s),
            vec3(x + s, s * 1.2, z + s),
            2.0,
        ));
    }
    scene = scene
        .with(Object::world(trunks, tex_rock(seed ^ 2)))
        .with(Object::world(canopies, tex_foliage(seed)))
        .with(Object::world(rocks, tex_rock(seed)));
    // distant ridge
    scene = scene.with(Object::world(
        Mesh::cuboid(vec3(-200.0, 0.0, -240.0), vec3(200.0, 28.0, -200.0), 30.0),
        tex_rock(seed ^ 3),
    ));
    // third-person hero a few meters ahead, slightly below center
    scene = scene.with(Object::camera_relative(
        humanoid(vec3(0.0, -1.7, -4.4), 1.0),
        tex_cloth(seed),
    ));

    let path = CameraPath {
        velocity: vec3(0.012, 0.0, -0.085),
        yaw_rate: 0.0012,
        bob_amplitude: 0.02,
        bob_frequency: 0.17,
        sway_amplitude: 0.04,
        sway_frequency: 0.03,
        far: 280.0,
        ..eye_path(vec3(0.0, 1.9, 6.0), 0.0)
    };
    (scene, path)
}

/// G3 — The Witcher 3: a village with huts and a hero walking through.
fn village_rpg(seed: u64) -> (Scene, CameraPath) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scene = Scene::new();
    scene = scene.with(Object::world(
        Mesh::ground(0.0, 160.0, 20, 4.0),
        tex_ground(seed),
    ));
    let mut walls = Mesh::new();
    let mut roofs = Mesh::new();
    for i in 0..12 {
        let side = if i % 2 == 0 { -1.0 } else { 1.0 };
        let x = side * rng.gen_range(6.0..14.0f32);
        let z = -8.0 - i as f32 * 9.0 + rng.gen_range(-2.0..2.0);
        building(
            vec3(x, 0.0, z),
            vec3(
                rng.gen_range(4.0..7.0),
                rng.gen_range(3.0..4.5),
                rng.gen_range(4.0..7.0),
            ),
            true,
            &mut walls,
            &mut roofs,
        );
    }
    scene = scene
        .with(Object::world(walls, tex_wall(seed)))
        .with(Object::world(roofs, tex_cloth(seed ^ 1)));
    // market crates and a well
    let mut props = Mesh::new();
    for _ in 0..14 {
        let x = rng.gen_range(-5.0..5.0f32);
        let z = rng.gen_range(-90.0..-6.0f32);
        if x.abs() < 1.6 {
            continue;
        }
        let s = rng.gen_range(0.4..0.9);
        props.merge(&Mesh::cuboid(
            vec3(x - s, 0.0, z - s),
            vec3(x + s, 1.4 * s, z + s),
            2.0,
        ));
    }
    scene = scene.with(Object::world(props, tex_rock(seed ^ 4)));
    let mut trunks = Mesh::new();
    let mut canopies = Mesh::new();
    for _ in 0..18 {
        let x = rng.gen_range(-70.0..70.0f32);
        let z = rng.gen_range(-150.0..-20.0f32);
        if x.abs() < 15.0 {
            continue;
        }
        tree(
            vec3(x, 0.0, z),
            rng.gen_range(1.0..2.0),
            &mut trunks,
            &mut canopies,
        );
    }
    scene = scene
        .with(Object::world(trunks, tex_rock(seed ^ 5)))
        .with(Object::world(canopies, tex_foliage(seed)));
    // Geralt stand-in, third person
    scene = scene.with(Object::camera_relative(
        humanoid(vec3(0.0, -1.8, -4.0), 1.05),
        tex_cloth(seed),
    ));

    let path = CameraPath {
        velocity: vec3(0.0, 0.0, -0.06),
        yaw_rate: 0.0008,
        bob_amplitude: 0.02,
        bob_frequency: 0.15,
        sway_amplitude: 0.06,
        sway_frequency: 0.02,
        far: 260.0,
        ..eye_path(vec3(0.0, 2.0, 8.0), 0.0)
    };
    (scene, path)
}

/// G4 — Red Dead Redemption 2: plains, a rider, a frontier town far ahead.
fn frontier_plains(seed: u64) -> (Scene, CameraPath) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scene = Scene::new();
    scene.sky_color = [205.0, 170.0, 130.0];
    scene = scene.with(Object::world(Mesh::ground(0.0, 220.0, 24, 4.0), {
        ProceduralTexture::Noise {
            base: [140.0, 116.0, 76.0],
            amplitude: 0.4,
            octaves: 5,
            frequency: 5.0,
            seed,
        }
    }));
    // scattered scrub
    let mut scrub = Mesh::new();
    for _ in 0..50 {
        let x = rng.gen_range(-90.0..90.0f32);
        let z = rng.gen_range(-180.0..-8.0f32);
        if x.abs() < 2.5 {
            continue;
        }
        let s = rng.gen_range(0.3..0.9);
        scrub.merge(&Mesh::pyramid(vec3(x, 0.0, z), s, s * 1.8));
    }
    scene = scene.with(Object::world(scrub, tex_foliage(seed)));
    // town on the horizon
    let mut walls = Mesh::new();
    let mut roofs = Mesh::new();
    for i in 0..8 {
        building(
            vec3(
                -20.0 + i as f32 * 6.0,
                0.0,
                -150.0 - rng.gen_range(0.0..15.0f32),
            ),
            vec3(5.0, rng.gen_range(4.0..8.0), 5.0),
            true,
            &mut walls,
            &mut roofs,
        );
    }
    scene = scene
        .with(Object::world(walls, tex_wall(seed)))
        .with(Object::world(roofs, tex_metal()));
    // horse + rider stand-in (vehicle body + humanoid)
    let mut rider = vehicle(vec3(0.0, -1.8, -5.2), 0.55);
    rider.merge(&humanoid(vec3(0.0, -1.2, -5.2), 0.8));
    scene = scene.with(Object::camera_relative(rider, tex_cloth(seed)));

    let path = CameraPath {
        velocity: vec3(-0.01, 0.0, -0.14),
        yaw_rate: -0.0009,
        bob_amplitude: 0.05,
        bob_frequency: 0.3,
        sway_amplitude: 0.03,
        sway_frequency: 0.05,
        far: 300.0,
        ..eye_path(vec3(0.0, 2.2, 10.0), 0.0)
    };
    (scene, path)
}

/// G5 — GTA V: a street canyon of tall buildings, driving forward.
fn city_streets(seed: u64) -> (Scene, CameraPath) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scene = Scene::new();
    scene = scene.with(Object::world(
        Mesh::ground(0.0, 220.0, 24, 5.0),
        tex_asphalt(seed),
    ));
    let mut towers = Mesh::new();
    for i in 0..16 {
        for side in [-1.0f32, 1.0] {
            let z = -8.0 - i as f32 * 14.0;
            let w = rng.gen_range(4.0..8.0f32);
            let h = rng.gen_range(8.0..40.0f32);
            let x = side * rng.gen_range(8.0..13.0f32);
            towers.merge(&Mesh::cuboid(
                vec3(x - w * 0.5, 0.0, z - w * 0.5),
                vec3(x + w * 0.5, h, z + w * 0.5),
                6.0,
            ));
        }
    }
    scene = scene.with(Object::world(towers, {
        ProceduralTexture::Checker {
            a: [168.0, 176.0, 188.0],
            b: [64.0, 76.0, 96.0],
            scale: 10.0,
        }
    }));
    // parked cars
    let mut cars = Mesh::new();
    for _ in 0..10 {
        let x = if rng.gen_bool(0.5) { -5.0 } else { 5.0 };
        let z = rng.gen_range(-150.0..-10.0f32);
        cars.merge(&vehicle(vec3(x, 0.0, z), rng.gen_range(0.8..1.0)));
    }
    scene = scene.with(Object::world(cars, tex_metal()));
    // player car hood
    scene = scene.with(Object::camera_relative(
        vehicle(vec3(0.0, -1.75, -3.6), 0.85),
        tex_cloth(seed ^ 2),
    ));

    let path = CameraPath {
        velocity: vec3(0.0, 0.0, -0.42),
        bob_amplitude: 0.012,
        bob_frequency: 0.6,
        sway_amplitude: 0.018,
        sway_frequency: 0.08,
        far: 320.0,
        ..eye_path(vec3(0.0, 1.6, 6.0), 0.0)
    };
    (scene, path)
}

/// G6 — God of War: a rocky arena with a large foe mid-frame.
fn rocky_arena(seed: u64) -> (Scene, CameraPath) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scene = Scene::new();
    scene.sky_color = [120.0, 130.0, 150.0];
    scene = scene.with(Object::world(
        Mesh::ground(0.0, 140.0, 20, 4.0),
        tex_rock(seed),
    ));
    // ring of boulders
    let mut rocks = Mesh::new();
    for i in 0..26 {
        let ang = i as f32 / 26.0 * std::f32::consts::TAU;
        let r = rng.gen_range(22.0..34.0f32);
        let x = ang.sin() * r;
        let z = -30.0 + ang.cos() * r;
        let s = rng.gen_range(1.2..3.5);
        rocks.merge(&Mesh::cuboid(
            vec3(x - s, 0.0, z - s),
            vec3(x + s, s * rng.gen_range(1.0..2.2), z + s),
            3.0,
        ));
    }
    scene = scene.with(Object::world(rocks, tex_rock(seed ^ 1)));
    // towering foe near arena center
    scene = scene.with(Object::world(
        humanoid(vec3(0.0, 0.0, -16.0), 3.2),
        tex_rock(seed ^ 2),
    ));
    // cliff backdrop
    scene = scene.with(Object::world(
        Mesh::cuboid(vec3(-160.0, 0.0, -180.0), vec3(160.0, 45.0, -150.0), 24.0),
        tex_rock(seed ^ 3),
    ));
    // Kratos stand-in
    scene = scene.with(Object::camera_relative(
        humanoid(vec3(-0.4, -1.8, -3.6), 1.1),
        tex_cloth(seed),
    ));

    let path = CameraPath {
        velocity: vec3(0.03, 0.0, -0.05),
        yaw_rate: 0.0022,
        bob_amplitude: 0.025,
        bob_frequency: 0.2,
        sway_amplitude: 0.05,
        sway_frequency: 0.06,
        far: 260.0,
        ..eye_path(vec3(2.0, 1.9, 4.0), -0.06)
    };
    (scene, path)
}

/// G7 — Shadow of the Tomb Raider: a cave with stalagmites.
fn cave_survival(seed: u64) -> (Scene, CameraPath) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scene = Scene::new();
    scene.sky_color = [34.0, 30.0, 38.0];
    scene.ambient = 0.5;
    scene.fog_density = 0.015;
    scene = scene.with(Object::world(
        Mesh::ground(0.0, 120.0, 20, 3.0),
        tex_rock(seed),
    ));
    // cave ceiling and walls
    scene = scene.with(Object::world(
        Mesh::cuboid(vec3(-14.0, 7.0, -130.0), vec3(14.0, 8.0, 8.0), 18.0),
        tex_rock(seed ^ 1),
    ));
    let mut walls = Mesh::new();
    walls.merge(&Mesh::cuboid(
        vec3(-15.0, 0.0, -130.0),
        vec3(-13.0, 7.0, 8.0),
        18.0,
    ));
    walls.merge(&Mesh::cuboid(
        vec3(13.0, 0.0, -130.0),
        vec3(15.0, 7.0, 8.0),
        18.0,
    ));
    scene = scene.with(Object::world(walls, tex_rock(seed ^ 2)));
    // stalagmites and stalactites
    let mut spikes = Mesh::new();
    for _ in 0..30 {
        let x = rng.gen_range(-11.0..11.0f32);
        let z = rng.gen_range(-110.0..-6.0f32);
        if x.abs() < 1.8 {
            continue;
        }
        let s = rng.gen_range(0.4..1.4);
        spikes.merge(&Mesh::pyramid(
            vec3(x, 0.0, z),
            s,
            s * rng.gen_range(2.0..4.0),
        ));
    }
    scene = scene.with(Object::world(spikes, tex_rock(seed ^ 3)));
    // Lara stand-in
    scene = scene.with(Object::camera_relative(
        humanoid(vec3(0.0, -1.75, -3.8), 1.0),
        tex_cloth(seed),
    ));

    let path = CameraPath {
        velocity: vec3(0.0, 0.0, -0.055),
        yaw_rate: -0.001,
        bob_amplitude: 0.03,
        bob_frequency: 0.18,
        sway_amplitude: 0.07,
        sway_frequency: 0.025,
        far: 180.0,
        ..eye_path(vec3(0.0, 1.8, 4.0), 0.04)
    };
    (scene, path)
}

/// G8 — A Plague Tale: a narrow medieval alley, slow sneaking pace.
fn alley_stealth(seed: u64) -> (Scene, CameraPath) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scene = Scene::new();
    scene.sky_color = [96.0, 104.0, 124.0];
    scene.fog_density = 0.008;
    scene = scene.with(Object::world(
        Mesh::ground(0.0, 120.0, 20, 4.0),
        tex_asphalt(seed),
    ));
    let mut walls = Mesh::new();
    let mut roofs = Mesh::new();
    for i in 0..12 {
        let z = -4.0 - i as f32 * 9.0;
        for side in [-1.0f32, 1.0] {
            let x = side * rng.gen_range(3.2..4.4f32);
            building(
                vec3(x + side * 2.5, 0.0, z),
                vec3(5.0, rng.gen_range(5.0..9.0), 8.0),
                true,
                &mut walls,
                &mut roofs,
            );
        }
    }
    scene = scene
        .with(Object::world(walls, tex_wall(seed)))
        .with(Object::world(roofs, tex_metal()));
    // barrels and carts in the lane
    let mut props = Mesh::new();
    for _ in 0..10 {
        let x = rng.gen_range(-2.2..2.2f32);
        let z = rng.gen_range(-90.0..-5.0f32);
        if x.abs() < 1.0 {
            continue;
        }
        let s = rng.gen_range(0.35..0.8);
        props.merge(&Mesh::cuboid(
            vec3(x - s, 0.0, z - s),
            vec3(x + s, 1.5 * s, z + s),
            2.0,
        ));
    }
    scene = scene.with(Object::world(props, tex_rock(seed ^ 1)));
    scene = scene.with(Object::camera_relative(
        humanoid(vec3(0.15, -1.7, -3.2), 0.9),
        tex_cloth(seed),
    ));

    let path = CameraPath {
        velocity: vec3(0.0, 0.0, -0.035),
        bob_amplitude: 0.015,
        bob_frequency: 0.12,
        sway_amplitude: 0.05,
        sway_frequency: 0.018,
        far: 200.0,
        ..eye_path(vec3(0.0, 1.65, 4.0), 0.0)
    };
    (scene, path)
}

/// G9 — Farming Simulator: crop rows to the horizon, slow tractor.
fn farmland(seed: u64) -> (Scene, CameraPath) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scene = Scene::new();
    scene = scene.with(Object::world(Mesh::ground(0.0, 240.0, 24, 5.0), {
        ProceduralTexture::Noise {
            base: [120.0, 96.0, 60.0],
            amplitude: 0.4,
            octaves: 5,
            frequency: 7.0,
            seed,
        }
    }));
    // crop rows: long thin boxes parallel to travel
    let mut crops = Mesh::new();
    for i in 0..24 {
        let x = -34.0 + i as f32 * 3.0;
        if x.abs() < 2.2 {
            continue;
        }
        crops.merge(&Mesh::cuboid(
            vec3(x - 0.8, 0.0, -220.0),
            vec3(x + 0.8, rng.gen_range(0.7..1.1), -4.0),
            40.0,
        ));
    }
    scene = scene.with(Object::world(crops, tex_foliage(seed)));
    // barn far ahead
    let mut walls = Mesh::new();
    let mut roofs = Mesh::new();
    building(
        vec3(12.0, 0.0, -170.0),
        vec3(14.0, 9.0, 12.0),
        true,
        &mut walls,
        &mut roofs,
    );
    scene = scene
        .with(Object::world(walls, tex_cloth(seed ^ 1)))
        .with(Object::world(roofs, tex_metal()));
    // tractor hood
    scene = scene.with(Object::camera_relative(
        vehicle(vec3(0.0, -2.0, -4.0), 1.1),
        ProceduralTexture::Noise {
            base: [60.0, 140.0, 60.0],
            amplitude: 0.3,
            octaves: 4,
            frequency: 8.0,
            seed: seed ^ 2,
        },
    ));

    let path = CameraPath {
        velocity: vec3(0.0, 0.0, -0.045),
        bob_amplitude: 0.02,
        bob_frequency: 0.35,
        sway_amplitude: 0.012,
        sway_frequency: 0.02,
        far: 320.0,
        ..eye_path(vec3(0.0, 2.6, 6.0), 0.0)
    };
    (scene, path)
}

/// G10 — Forza Horizon 5: a straight road with barriers at racing speed.
fn race_track(seed: u64) -> (Scene, CameraPath) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scene = Scene::new();
    scene = scene.with(Object::world(
        Mesh::ground(0.0, 260.0, 24, 6.0),
        tex_ground(seed),
    ));
    // road surface (slightly raised strip)
    scene = scene.with(Object::world(
        Mesh::cuboid(vec3(-5.0, 0.0, -260.0), vec3(5.0, 0.05, 20.0), 48.0),
        tex_asphalt(seed ^ 1),
    ));
    // barriers
    let mut barriers = Mesh::new();
    for i in 0..40 {
        let z = -6.0 - i as f32 * 6.5;
        for side in [-1.0f32, 1.0] {
            barriers.merge(&Mesh::cuboid(
                vec3(side * 5.4 - 0.2, 0.0, z - 1.6),
                vec3(side * 5.4 + 0.2, 1.0, z + 1.6),
                3.0,
            ));
        }
    }
    scene = scene.with(Object::world(
        barriers,
        ProceduralTexture::Checker {
            a: [220.0, 40.0, 40.0],
            b: [235.0, 235.0, 235.0],
            scale: 3.0,
        },
    ));
    // roadside trees and billboards
    let mut trunks = Mesh::new();
    let mut canopies = Mesh::new();
    for _ in 0..30 {
        let x = rng.gen_range(9.0..60.0f32) * if rng.gen_bool(0.5) { -1.0 } else { 1.0 };
        let z = rng.gen_range(-230.0..-10.0f32);
        tree(
            vec3(x, 0.0, z),
            rng.gen_range(1.0..2.4),
            &mut trunks,
            &mut canopies,
        );
    }
    scene = scene
        .with(Object::world(trunks, tex_rock(seed ^ 2)))
        .with(Object::world(canopies, tex_foliage(seed)));
    // rival car ahead on the road
    scene = scene.with(Object::world(
        vehicle(vec3(2.0, 0.0, -40.0), 1.0),
        tex_metal(),
    ));
    // player car hood
    scene = scene.with(Object::camera_relative(
        vehicle(vec3(0.0, -1.5, -3.4), 0.9),
        ProceduralTexture::Noise {
            base: [40.0, 70.0, 180.0],
            amplitude: 0.2,
            octaves: 4,
            frequency: 9.0,
            seed: seed ^ 3,
        },
    ));

    let path = CameraPath {
        velocity: vec3(0.0, 0.0, -0.85),
        bob_amplitude: 0.008,
        bob_frequency: 0.9,
        sway_amplitude: 0.012,
        sway_frequency: 0.12,
        far: 340.0,
        ..eye_path(vec3(0.0, 1.4, 10.0), 0.0)
    };
    (scene, path)
}
