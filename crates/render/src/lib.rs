//! Software 3D rendering substrate for the GameStreamSR reproduction.
//!
//! The paper evaluates on ten commercial games whose engines are
//! proprietary; this crate replaces them with a from-scratch software
//! rasterizer plus ten deterministic procedural scene generators (one per
//! genre of the paper's Table I). The rasterizer implements the pipeline of
//! the paper's Fig. 4 — vertex processing, primitive assembly,
//! rasterization, pixel shading — and, crucially, produces the **depth
//! buffer** alongside the color buffer, which is the input the paper's
//! server-side RoI detection consumes for free.
//!
//! Two properties of real game rendering that the paper's insight rests on
//! are reproduced faithfully:
//!
//! * **Mipmapped level-of-detail**: procedural textures lose octaves of
//!   detail as the sampled LOD grows with distance, so near objects carry
//!   more high-frequency content than far ones (§III-B).
//! * **Linear normalized depth**: the depth map stores `0.0` at the near
//!   plane and `1.0` at the far plane, matching the "darker = nearer"
//!   convention of the paper's Fig. 5.
//!
//! ```
//! use gss_render::{GameId, GameWorkload};
//!
//! let workload = GameWorkload::new(GameId::G3);
//! let out = workload.render_frame(0, 160, 90);
//! assert_eq!(out.frame.size(), (160, 90));
//! assert_eq!(out.depth.size(), (160, 90));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod camera;
pub mod math;
pub mod mesh;
pub mod raster;
pub mod scene;
pub mod scenes;
pub mod texture;

pub use camera::{Camera, CameraPath};
pub use raster::{render, RenderOutput, RenderStats};
pub use scene::{Attachment, Object, Scene};
pub use scenes::{GameId, GameWorkload};
