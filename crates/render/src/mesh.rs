//! Triangle meshes and the primitive shapes the scene generators compose.

use crate::math::{vec3, Vec3};

/// A mesh vertex: world/model-space position plus texture coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vertex {
    /// Model-space position.
    pub position: Vec3,
    /// Texture coordinate (u, v).
    pub uv: (f32, f32),
}

/// An indexed triangle mesh.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Mesh {
    /// Vertex pool.
    pub vertices: Vec<Vertex>,
    /// Triangles as vertex-index triples (counter-clockwise front faces).
    pub triangles: Vec<[usize; 3]>,
}

impl Mesh {
    /// An empty mesh.
    pub fn new() -> Self {
        Mesh::default()
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// Appends another mesh's geometry.
    pub fn merge(&mut self, other: &Mesh) {
        let base = self.vertices.len();
        self.vertices.extend_from_slice(&other.vertices);
        self.triangles.extend(
            other
                .triangles
                .iter()
                .map(|t| [t[0] + base, t[1] + base, t[2] + base]),
        );
    }

    fn push_quad(&mut self, corners: [Vec3; 4], uv_scale: (f32, f32)) {
        let base = self.vertices.len();
        let uvs = [
            (0.0, 0.0),
            (uv_scale.0, 0.0),
            (uv_scale.0, uv_scale.1),
            (0.0, uv_scale.1),
        ];
        for (p, uv) in corners.into_iter().zip(uvs) {
            self.vertices.push(Vertex { position: p, uv });
        }
        self.triangles.push([base, base + 1, base + 2]);
        self.triangles.push([base, base + 2, base + 3]);
    }

    /// An axis-aligned box spanning `min..max` with per-face UVs tiled
    /// `uv_tiles` times.
    pub fn cuboid(min: Vec3, max: Vec3, uv_tiles: f32) -> Mesh {
        let mut m = Mesh::new();
        let (a, b) = (min, max);
        let uv = (uv_tiles, uv_tiles);
        // +Z (front)
        m.push_quad(
            [
                vec3(a.x, a.y, b.z),
                vec3(b.x, a.y, b.z),
                vec3(b.x, b.y, b.z),
                vec3(a.x, b.y, b.z),
            ],
            uv,
        );
        // -Z (back)
        m.push_quad(
            [
                vec3(b.x, a.y, a.z),
                vec3(a.x, a.y, a.z),
                vec3(a.x, b.y, a.z),
                vec3(b.x, b.y, a.z),
            ],
            uv,
        );
        // +X
        m.push_quad(
            [
                vec3(b.x, a.y, b.z),
                vec3(b.x, a.y, a.z),
                vec3(b.x, b.y, a.z),
                vec3(b.x, b.y, b.z),
            ],
            uv,
        );
        // -X
        m.push_quad(
            [
                vec3(a.x, a.y, a.z),
                vec3(a.x, a.y, b.z),
                vec3(a.x, b.y, b.z),
                vec3(a.x, b.y, a.z),
            ],
            uv,
        );
        // +Y (top)
        m.push_quad(
            [
                vec3(a.x, b.y, b.z),
                vec3(b.x, b.y, b.z),
                vec3(b.x, b.y, a.z),
                vec3(a.x, b.y, a.z),
            ],
            uv,
        );
        // -Y (bottom)
        m.push_quad(
            [
                vec3(a.x, a.y, a.z),
                vec3(b.x, a.y, a.z),
                vec3(b.x, a.y, b.z),
                vec3(a.x, a.y, b.z),
            ],
            uv,
        );
        m
    }

    /// A horizontal grid plane at height `y`, spanning `±half` on X/Z,
    /// tessellated into `cells x cells` quads (so near-plane clipping acts
    /// locally) with UVs tiled once per cell times `uv_per_cell`.
    ///
    /// # Panics
    ///
    /// Panics when `cells` is zero.
    pub fn ground(y: f32, half: f32, cells: usize, uv_per_cell: f32) -> Mesh {
        assert!(cells > 0, "need at least one cell");
        let mut m = Mesh::new();
        let step = 2.0 * half / cells as f32;
        for cz in 0..cells {
            for cx in 0..cells {
                let x0 = -half + cx as f32 * step;
                let z0 = -half + cz as f32 * step;
                m.push_quad(
                    [
                        vec3(x0, y, z0 + step),
                        vec3(x0 + step, y, z0 + step),
                        vec3(x0 + step, y, z0),
                        vec3(x0, y, z0),
                    ],
                    (uv_per_cell, uv_per_cell),
                );
            }
        }
        m
    }

    /// A four-sided pyramid (tree canopy, roof, stalagmite) with its square
    /// base spanning `±half_base` at `base_y` and apex at `base_y + height`.
    pub fn pyramid(center: Vec3, half_base: f32, height: f32) -> Mesh {
        let mut m = Mesh::new();
        let a = vec3(center.x - half_base, center.y, center.z - half_base);
        let b = vec3(center.x + half_base, center.y, center.z - half_base);
        let c = vec3(center.x + half_base, center.y, center.z + half_base);
        let d = vec3(center.x - half_base, center.y, center.z + half_base);
        let apex = vec3(center.x, center.y + height, center.z);
        let apex_uv = (0.5, 1.0);
        for (p, q) in [(d, c), (c, b), (b, a), (a, d)] {
            let base = m.vertices.len();
            m.vertices.push(Vertex {
                position: p,
                uv: (0.0, 0.0),
            });
            m.vertices.push(Vertex {
                position: q,
                uv: (1.0, 0.0),
            });
            m.vertices.push(Vertex {
                position: apex,
                uv: apex_uv,
            });
            m.triangles.push([base, base + 1, base + 2]);
        }
        // base (facing down)
        m.push_quad([a, b, c, d], (1.0, 1.0));
        m
    }

    /// Axis-aligned bounding box of the mesh, or `None` when empty.
    pub fn bounding_box(&self) -> Option<(Vec3, Vec3)> {
        let first = self.vertices.first()?;
        let mut lo = first.position;
        let mut hi = first.position;
        for v in &self.vertices {
            lo = vec3(
                lo.x.min(v.position.x),
                lo.y.min(v.position.y),
                lo.z.min(v.position.z),
            );
            hi = vec3(
                hi.x.max(v.position.x),
                hi.y.max(v.position.y),
                hi.z.max(v.position.z),
            );
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuboid_has_twelve_triangles() {
        let m = Mesh::cuboid(vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0), 1.0);
        assert_eq!(m.triangle_count(), 12);
        assert_eq!(m.vertices.len(), 24);
    }

    #[test]
    fn ground_tessellation_counts() {
        let m = Mesh::ground(0.0, 10.0, 4, 1.0);
        assert_eq!(m.triangle_count(), 4 * 4 * 2);
    }

    #[test]
    fn pyramid_counts() {
        let m = Mesh::pyramid(Vec3::ZERO, 1.0, 2.0);
        assert_eq!(m.triangle_count(), 4 + 2);
    }

    #[test]
    fn merge_offsets_indices() {
        let mut a = Mesh::cuboid(vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0), 1.0);
        let b = Mesh::pyramid(Vec3::ZERO, 1.0, 1.0);
        let na = a.vertices.len();
        a.merge(&b);
        assert_eq!(a.triangle_count(), 12 + 6);
        let max_idx = a.triangles.iter().flatten().copied().max().unwrap();
        assert!(max_idx >= na);
        assert!(max_idx < a.vertices.len());
    }

    #[test]
    fn bounding_box_of_cuboid() {
        let m = Mesh::cuboid(vec3(-1.0, 0.0, 2.0), vec3(3.0, 4.0, 5.0), 1.0);
        let (lo, hi) = m.bounding_box().unwrap();
        assert_eq!(lo, vec3(-1.0, 0.0, 2.0));
        assert_eq!(hi, vec3(3.0, 4.0, 5.0));
        assert!(Mesh::new().bounding_box().is_none());
    }
}
