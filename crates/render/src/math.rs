//! Minimal 3D linear algebra: column-vector `Vec3` and row-major `Mat4`.

use std::ops::{Add, Mul, Neg, Sub};

/// A 3-component `f32` vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// Shorthand constructor for [`Vec3`].
pub const fn vec3(x: f32, y: f32, z: f32) -> Vec3 {
    Vec3 { x, y, z }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = vec3(0.0, 0.0, 0.0);
    /// World up (+Y).
    pub const UP: Vec3 = vec3(0.0, 1.0, 0.0);

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        vec3(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit vector in the same direction; the zero vector is returned
    /// unchanged.
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len <= f32::EPSILON {
            self
        } else {
            self * (1.0 / len)
        }
    }

    /// Component-wise scale.
    pub fn scaled(self, s: Vec3) -> Vec3 {
        vec3(self.x * s.x, self.y * s.y, self.z * s.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        vec3(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        vec3(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f32) -> Vec3 {
        vec3(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        vec3(-self.x, -self.y, -self.z)
    }
}

/// A 4-component homogeneous vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W component.
    pub w: f32,
}

/// Shorthand constructor for [`Vec4`].
pub const fn vec4(x: f32, y: f32, z: f32, w: f32) -> Vec4 {
    Vec4 { x, y, z, w }
}

impl Vec4 {
    /// Drops the W component.
    pub fn xyz(self) -> Vec3 {
        vec3(self.x, self.y, self.z)
    }

    /// Promotes a point (`w = 1`).
    pub fn from_point(p: Vec3) -> Vec4 {
        vec4(p.x, p.y, p.z, 1.0)
    }

    /// Promotes a direction (`w = 0`).
    pub fn from_dir(d: Vec3) -> Vec4 {
        vec4(d.x, d.y, d.z, 0.0)
    }

    /// Linear interpolation `self + (rhs - self) * t` applied per component.
    pub fn lerp(self, rhs: Vec4, t: f32) -> Vec4 {
        vec4(
            self.x + (rhs.x - self.x) * t,
            self.y + (rhs.y - self.y) * t,
            self.z + (rhs.z - self.z) * t,
            self.w + (rhs.w - self.w) * t,
        )
    }
}

/// A row-major 4x4 matrix acting on column vectors (`m * v`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Rows of the matrix.
    pub rows: [[f32; 4]; 4],
}

impl Mat4 {
    /// The identity transform.
    pub const IDENTITY: Mat4 = Mat4 {
        rows: [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ],
    };

    /// Translation by `t`.
    pub fn translation(t: Vec3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        m.rows[0][3] = t.x;
        m.rows[1][3] = t.y;
        m.rows[2][3] = t.z;
        m
    }

    /// Non-uniform scale.
    pub fn scale(s: Vec3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        m.rows[0][0] = s.x;
        m.rows[1][1] = s.y;
        m.rows[2][2] = s.z;
        m
    }

    /// Rotation about +Y by `angle` radians.
    pub fn rotation_y(angle: f32) -> Mat4 {
        let (s, c) = angle.sin_cos();
        let mut m = Mat4::IDENTITY;
        m.rows[0][0] = c;
        m.rows[0][2] = s;
        m.rows[2][0] = -s;
        m.rows[2][2] = c;
        m
    }

    /// Rotation about +X by `angle` radians.
    pub fn rotation_x(angle: f32) -> Mat4 {
        let (s, c) = angle.sin_cos();
        let mut m = Mat4::IDENTITY;
        m.rows[1][1] = c;
        m.rows[1][2] = -s;
        m.rows[2][1] = s;
        m.rows[2][2] = c;
        m
    }

    /// Right-handed look-at view matrix (camera looks down −Z in view
    /// space).
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Mat4 {
        let f = (target - eye).normalized();
        let r = f.cross(up).normalized();
        let u = r.cross(f);
        Mat4 {
            rows: [
                [r.x, r.y, r.z, -r.dot(eye)],
                [u.x, u.y, u.z, -u.dot(eye)],
                [-f.x, -f.y, -f.z, f.dot(eye)],
                [0.0, 0.0, 0.0, 1.0],
            ],
        }
    }

    /// Right-handed perspective projection with OpenGL-style clip space
    /// (`z ∈ [-w, w]`).
    ///
    /// # Panics
    ///
    /// Panics when `near >= far` or either plane is non-positive.
    pub fn perspective(fov_y: f32, aspect: f32, near: f32, far: f32) -> Mat4 {
        assert!(near > 0.0 && far > near, "invalid near/far planes");
        let f = 1.0 / (fov_y * 0.5).tan();
        let mut m = Mat4 {
            rows: [[0.0; 4]; 4],
        };
        m.rows[0][0] = f / aspect;
        m.rows[1][1] = f;
        m.rows[2][2] = (far + near) / (near - far);
        m.rows[2][3] = 2.0 * far * near / (near - far);
        m.rows[3][2] = -1.0;
        m
    }

    /// Matrix-vector product.
    pub fn mul_vec4(&self, v: Vec4) -> Vec4 {
        let r = &self.rows;
        vec4(
            r[0][0] * v.x + r[0][1] * v.y + r[0][2] * v.z + r[0][3] * v.w,
            r[1][0] * v.x + r[1][1] * v.y + r[1][2] * v.z + r[1][3] * v.w,
            r[2][0] * v.x + r[2][1] * v.y + r[2][2] * v.z + r[2][3] * v.w,
            r[3][0] * v.x + r[3][1] * v.y + r[3][2] * v.z + r[3][3] * v.w,
        )
    }

    /// Transforms a point (`w = 1`, perspective divide NOT applied).
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.mul_vec4(Vec4::from_point(p)).xyz()
    }

    /// Transforms a direction (`w = 0`).
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        self.mul_vec4(Vec4::from_dir(d)).xyz()
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4 {
            rows: [[0.0; 4]; 4],
        };
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += self.rows[i][k] * rhs.rows[k][j];
                }
                out.rows[i][j] = acc;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: Vec3, b: Vec3) -> bool {
        (a - b).length() < 1e-4
    }

    #[test]
    fn cross_of_axes() {
        let x = vec3(1.0, 0.0, 0.0);
        let y = vec3(0.0, 1.0, 0.0);
        assert!(approx(x.cross(y), vec3(0.0, 0.0, 1.0)));
    }

    #[test]
    fn normalize_unit_length() {
        let v = vec3(3.0, 4.0, 12.0).normalized();
        assert!((v.length() - 1.0).abs() < 1e-6);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn identity_is_noop() {
        let p = vec3(1.5, -2.0, 7.0);
        assert!(approx(Mat4::IDENTITY.transform_point(p), p));
    }

    #[test]
    fn translation_moves_points_not_dirs() {
        let m = Mat4::translation(vec3(1.0, 2.0, 3.0));
        assert!(approx(m.transform_point(Vec3::ZERO), vec3(1.0, 2.0, 3.0)));
        assert!(approx(
            m.transform_dir(vec3(1.0, 0.0, 0.0)),
            vec3(1.0, 0.0, 0.0)
        ));
    }

    #[test]
    fn rotation_y_quarter_turn() {
        let m = Mat4::rotation_y(std::f32::consts::FRAC_PI_2);
        // +Z rotates onto +X under this convention
        assert!(approx(
            m.transform_point(vec3(0.0, 0.0, 1.0)),
            vec3(1.0, 0.0, 0.0)
        ));
    }

    #[test]
    fn matrix_product_composes() {
        let t = Mat4::translation(vec3(1.0, 0.0, 0.0));
        let s = Mat4::scale(vec3(2.0, 2.0, 2.0));
        let ts = t * s;
        // scale first, then translate
        assert!(approx(
            ts.transform_point(vec3(1.0, 0.0, 0.0)),
            vec3(3.0, 0.0, 0.0)
        ));
    }

    #[test]
    fn look_at_puts_target_on_negative_z() {
        let eye = vec3(0.0, 0.0, 5.0);
        let m = Mat4::look_at(eye, Vec3::ZERO, Vec3::UP);
        let t = m.transform_point(Vec3::ZERO);
        assert!(t.z < 0.0, "target should be in front (−z): {t:?}");
        assert!(t.x.abs() < 1e-4 && t.y.abs() < 1e-4);
        assert!((t.z + 5.0).abs() < 1e-4);
    }

    #[test]
    fn perspective_maps_near_and_far_planes() {
        let m = Mat4::perspective(1.0, 1.0, 1.0, 100.0);
        let near = m.mul_vec4(vec4(0.0, 0.0, -1.0, 1.0));
        let far = m.mul_vec4(vec4(0.0, 0.0, -100.0, 1.0));
        assert!((near.z / near.w + 1.0).abs() < 1e-4, "near → -1");
        assert!((far.z / far.w - 1.0).abs() < 1e-3, "far → +1");
    }

    #[test]
    #[should_panic(expected = "invalid near/far")]
    fn perspective_rejects_bad_planes() {
        let _ = Mat4::perspective(1.0, 1.0, 10.0, 1.0);
    }
}
