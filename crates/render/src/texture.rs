//! Procedural textures with mipmap-style level-of-detail.
//!
//! Real engines mipmap their textures: the farther a surface, the lower the
//! sampled mip level and the less high-frequency detail survives (§III-B of
//! the paper). The textures here reproduce that by construction — each
//! variant progressively blends toward its flat mean color as `lod` grows —
//! so depth genuinely predicts rendered detail in our frames, which is the
//! premise of depth-guided RoI detection.

/// An RGB color with `f32` channels in `0.0..=255.0`.
pub type Color = [f32; 3];

/// Linear blend of two colors.
pub fn mix(a: Color, b: Color, t: f32) -> Color {
    let t = t.clamp(0.0, 1.0);
    [
        a[0] + (b[0] - a[0]) * t,
        a[1] + (b[1] - a[1]) * t,
        a[2] + (b[2] - a[2]) * t,
    ]
}

/// Scales a color by a brightness factor, saturating at 255.
pub fn shade(c: Color, k: f32) -> Color {
    [
        (c[0] * k).clamp(0.0, 255.0),
        (c[1] * k).clamp(0.0, 255.0),
        (c[2] * k).clamp(0.0, 255.0),
    ]
}

/// Deterministic lattice hash → `[0, 1)`.
fn hash2(x: i64, y: i64, seed: u64) -> f32 {
    let mut h = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((x as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((y as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
    h ^= h >> 31;
    h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h ^= h >> 27;
    (h >> 40) as f32 / (1u64 << 24) as f32
}

/// Smoothly interpolated value noise at one frequency.
fn value_noise(u: f32, v: f32, seed: u64) -> f32 {
    let x0 = u.floor();
    let y0 = v.floor();
    let fx = u - x0;
    let fy = v - y0;
    let sx = fx * fx * (3.0 - 2.0 * fx);
    let sy = fy * fy * (3.0 - 2.0 * fy);
    let (xi, yi) = (x0 as i64, y0 as i64);
    let n00 = hash2(xi, yi, seed);
    let n10 = hash2(xi + 1, yi, seed);
    let n01 = hash2(xi, yi + 1, seed);
    let n11 = hash2(xi + 1, yi + 1, seed);
    let a = n00 + (n10 - n00) * sx;
    let b = n01 + (n11 - n01) * sx;
    a + (b - a) * sy
}

/// A mip-aware procedural texture.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ProceduralTexture {
    /// A flat color (LOD-invariant).
    Solid(Color),
    /// A two-color checkerboard with `scale` squares per UV unit.
    Checker {
        /// First square color.
        a: Color,
        /// Second square color.
        b: Color,
        /// Squares per UV unit.
        scale: f32,
    },
    /// Fractal value noise modulating a base color.
    Noise {
        /// Base (mean) color.
        base: Color,
        /// Peak brightness modulation around the base (0..1).
        amplitude: f32,
        /// fBm octaves at LOD 0; higher = more fine detail.
        octaves: u32,
        /// Base spatial frequency in UV units.
        frequency: f32,
        /// Lattice seed.
        seed: u64,
    },
    /// Brick/panel pattern: mortar grid over a noisy fill.
    Bricks {
        /// Brick color.
        brick: Color,
        /// Mortar color.
        mortar: Color,
        /// Bricks per UV unit horizontally.
        scale: f32,
        /// Lattice seed for per-brick tinting.
        seed: u64,
    },
}

impl ProceduralTexture {
    /// The texture's mean color — the value it converges to as `lod → ∞`,
    /// like the 1x1 mip tail of a real mip chain.
    pub fn mean_color(&self) -> Color {
        match *self {
            ProceduralTexture::Solid(c) => c,
            ProceduralTexture::Checker { a, b, .. } => mix(a, b, 0.5),
            ProceduralTexture::Noise { base, .. } => base,
            ProceduralTexture::Bricks { brick, mortar, .. } => mix(brick, mortar, 0.18),
        }
    }

    /// Samples the texture at `(u, v)` and mip level `lod` (≥ 0; fractional
    /// levels blend continuously). Level 0 is full detail; each additional
    /// level halves the surviving detail, mirroring a real mip chain.
    pub fn sample(&self, u: f32, v: f32, lod: f32) -> Color {
        let lod = lod.max(0.0);
        // detail attenuation: like averaging a 2^lod x 2^lod texel footprint
        let detail = 0.5f32.powf(lod);
        match *self {
            ProceduralTexture::Solid(c) => c,
            ProceduralTexture::Checker { a, b, scale } => {
                let cell = ((u * scale).floor() as i64 + (v * scale).floor() as i64).rem_euclid(2);
                let sharp = if cell == 0 { a } else { b };
                mix(self.mean_color(), sharp, detail)
            }
            ProceduralTexture::Noise {
                base,
                amplitude,
                octaves,
                frequency,
                seed,
            } => {
                // drop one octave per mip level, exactly like prefiltering
                let eff_octaves = (octaves as f32 - lod).max(0.0);
                let full = eff_octaves.floor() as u32;
                let frac = eff_octaves - full as f32;
                // normalization uses the FULL octave budget so that dropping
                // octaves strictly removes energy (as prefiltering does)
                let mut norm = 0.0f32;
                let mut amp = 1.0f32;
                for _ in 0..octaves.max(1) {
                    norm += amp;
                    amp *= 0.55;
                }
                let mut amp = 1.0f32;
                let mut freq = frequency;
                let mut total = 0.0f32;
                for o in 0..=full.min(octaves) {
                    let w = if o == full { frac } else { 1.0 } * amp;
                    if w > 0.0 {
                        total += w
                            * (value_noise(u * freq, v * freq, seed.wrapping_add(o as u64)) - 0.5);
                    }
                    amp *= 0.55;
                    freq *= 2.1;
                }
                let n = total / norm;
                shade(base, 1.0 + 2.0 * amplitude * n)
            }
            ProceduralTexture::Bricks {
                brick,
                mortar,
                scale,
                seed,
            } => {
                let row = (v * scale * 0.5).floor();
                let offset = if (row as i64).rem_euclid(2) == 0 {
                    0.0
                } else {
                    0.5
                };
                let bu = u * scale + offset;
                let bv = v * scale * 0.5;
                let fu = bu - bu.floor();
                let fv = bv - bv.floor();
                let mortar_w = 0.06;
                let is_mortar = fu < mortar_w || fv < mortar_w * 2.0;
                let tint = 0.85 + 0.3 * hash2(bu.floor() as i64, bv.floor() as i64, seed);
                let sharp = if is_mortar {
                    mortar
                } else {
                    shade(brick, tint)
                };
                mix(self.mean_color(), sharp, detail)
            }
        }
    }

    /// Detail energy at a LOD: mean absolute deviation from the mean color,
    /// estimated over a fixed sample lattice. Used by tests to verify the
    /// mipmap premise (detail decreases with LOD).
    pub fn detail_energy(&self, lod: f32) -> f32 {
        let mean = self.mean_color();
        let mut acc = 0.0f32;
        let n = 32;
        for i in 0..n {
            for j in 0..n {
                let u = i as f32 / n as f32 * 4.0;
                let v = j as f32 / n as f32 * 4.0;
                let c = self.sample(u, v, lod);
                acc += (c[0] - mean[0]).abs() + (c[1] - mean[1]).abs() + (c[2] - mean[2]).abs();
            }
        }
        acc / (n * n * 3) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textures() -> Vec<ProceduralTexture> {
        vec![
            ProceduralTexture::Checker {
                a: [220.0, 210.0, 190.0],
                b: [40.0, 45.0, 60.0],
                scale: 4.0,
            },
            ProceduralTexture::Noise {
                base: [110.0, 140.0, 80.0],
                amplitude: 0.5,
                octaves: 5,
                frequency: 3.0,
                seed: 7,
            },
            ProceduralTexture::Bricks {
                brick: [150.0, 80.0, 60.0],
                mortar: [200.0, 200.0, 195.0],
                scale: 6.0,
                seed: 3,
            },
        ]
    }

    #[test]
    fn sampling_is_deterministic() {
        for t in textures() {
            assert_eq!(t.sample(0.37, 0.91, 0.5), t.sample(0.37, 0.91, 0.5));
        }
    }

    #[test]
    fn detail_decreases_with_lod() {
        for t in textures() {
            let d0 = t.detail_energy(0.0);
            let d2 = t.detail_energy(2.0);
            let d5 = t.detail_energy(5.0);
            assert!(d0 > d2, "{t:?}: {d0} vs {d2}");
            assert!(d2 > d5, "{t:?}: {d2} vs {d5}");
        }
    }

    #[test]
    fn high_lod_converges_to_mean() {
        for t in textures() {
            let mean = t.mean_color();
            let c = t.sample(1.234, 5.678, 12.0);
            for k in 0..3 {
                assert!(
                    (c[k] - mean[k]).abs() < 12.0,
                    "{t:?} channel {k}: {} vs {}",
                    c[k],
                    mean[k]
                );
            }
        }
    }

    #[test]
    fn solid_ignores_lod() {
        let t = ProceduralTexture::Solid([9.0, 8.0, 7.0]);
        assert_eq!(t.sample(0.1, 0.2, 0.0), t.sample(0.9, 0.1, 9.0));
        assert_eq!(t.detail_energy(0.0), 0.0);
    }

    #[test]
    fn colors_stay_in_range() {
        for t in textures() {
            for i in 0..50 {
                let c = t.sample(i as f32 * 0.13, i as f32 * 0.29, (i % 6) as f32 * 0.7);
                for ch in c {
                    assert!((0.0..=255.0).contains(&ch), "{t:?}: {ch}");
                }
            }
        }
    }

    #[test]
    fn noise_is_continuous() {
        let t = ProceduralTexture::Noise {
            base: [128.0, 128.0, 128.0],
            amplitude: 0.5,
            octaves: 3,
            frequency: 2.0,
            seed: 1,
        };
        // small UV steps produce small color steps
        let mut prev = t.sample(0.0, 0.3, 0.0);
        for i in 1..200 {
            let c = t.sample(i as f32 * 0.002, 0.3, 0.0);
            assert!(
                (c[0] - prev[0]).abs() < 24.0,
                "jump at {i}: {} → {}",
                prev[0],
                c[0]
            );
            prev = c;
        }
    }
}
