//! Scene description: objects, lighting and atmosphere.

use crate::math::Vec3;
use crate::mesh::Mesh;
use crate::texture::{Color, ProceduralTexture};

/// Which space an object's geometry lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attachment {
    /// World space: static scenery transformed by the camera's view matrix.
    World,
    /// Camera space: the object rides with the camera (third-person hero,
    /// first-person weapon, vehicle hood) exactly as such meshes are drawn
    /// in real games. X is right, Y up, Z negative forward.
    CameraRelative,
}

/// A renderable object: a mesh (already baked into its attachment space)
/// plus its texture.
#[derive(Debug, Clone)]
pub struct Object {
    /// Geometry in the attachment space.
    pub mesh: Mesh,
    /// Surface texture.
    pub texture: ProceduralTexture,
    /// Space the geometry lives in.
    pub attachment: Attachment,
}

impl Object {
    /// A static world-space object.
    pub fn world(mesh: Mesh, texture: ProceduralTexture) -> Self {
        Object {
            mesh,
            texture,
            attachment: Attachment::World,
        }
    }

    /// A camera-attached object.
    pub fn camera_relative(mesh: Mesh, texture: ProceduralTexture) -> Self {
        Object {
            mesh,
            texture,
            attachment: Attachment::CameraRelative,
        }
    }
}

/// A complete scene handed to the rasterizer.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Objects to draw.
    pub objects: Vec<Object>,
    /// Unit direction *towards* the light.
    pub light_dir: Vec3,
    /// Ambient lighting floor in `0..=1`.
    pub ambient: f32,
    /// Sky/background color, also the fog color.
    pub sky_color: Color,
    /// Exponential fog density per world unit (0 disables fog).
    pub fog_density: f32,
    /// World distance at which texture LOD reaches level 1; halving detail
    /// doubles with each further doubling of distance (mipmap behaviour).
    pub lod_reference_distance: f32,
}

impl Scene {
    /// An empty scene with neutral lighting.
    pub fn new() -> Self {
        Scene {
            objects: Vec::new(),
            light_dir: crate::math::vec3(0.4, 0.8, 0.45).normalized(),
            ambient: 0.35,
            sky_color: [140.0, 170.0, 215.0],
            fog_density: 0.004,
            lod_reference_distance: 6.0,
        }
    }

    /// Adds an object and returns `self` for chaining.
    pub fn with(mut self, object: Object) -> Self {
        self.objects.push(object);
        self
    }

    /// Total triangles across all objects.
    pub fn triangle_count(&self) -> usize {
        self.objects.iter().map(|o| o.mesh.triangle_count()).sum()
    }
}

impl Default for Scene {
    fn default() -> Self {
        Scene::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::vec3;

    #[test]
    fn with_appends_objects() {
        let s = Scene::new()
            .with(Object::world(
                Mesh::cuboid(vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0), 1.0),
                ProceduralTexture::Solid([1.0, 2.0, 3.0]),
            ))
            .with(Object::camera_relative(
                Mesh::pyramid(Vec3::ZERO, 1.0, 1.0),
                ProceduralTexture::Solid([4.0, 5.0, 6.0]),
            ));
        assert_eq!(s.objects.len(), 2);
        assert_eq!(s.triangle_count(), 12 + 6);
        assert_eq!(s.objects[1].attachment, Attachment::CameraRelative);
    }

    #[test]
    fn default_light_is_unit_length() {
        let s = Scene::default();
        assert!((s.light_dir.length() - 1.0).abs() < 1e-5);
    }
}
