//! The software rasterization pipeline (paper Fig. 4): vertex processing →
//! primitive assembly → near-plane clipping → perspective rasterization with
//! Z-buffering → pixel shading with mipmapped texturing, Lambert lighting
//! and fog.
//!
//! Alongside the color buffer it produces the **depth buffer** that the
//! GameStreamSR server consumes for RoI detection — captured at exactly the
//! same pipeline point as the paper's ReShade hook. Depth is linear and
//! normalized: `0.0` at the near plane, `1.0` at (and beyond) the far plane.

use crate::camera::Camera;
use crate::math::{Mat4, Vec3};
use crate::scene::{Attachment, Scene};
use crate::texture::{mix, shade, Color, ProceduralTexture};
use gss_frame::{DepthMap, Frame, Plane, Rgb8};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The rasterizer's output: the rendered picture and its Z-buffer.
#[derive(Debug, Clone)]
pub struct RenderOutput {
    /// Rendered color frame.
    pub frame: Frame,
    /// Per-pixel normalized linear depth.
    pub depth: DepthMap,
    /// Pipeline counters for this frame.
    pub stats: RenderStats,
}

/// Per-frame pipeline counters (primitive assembly → rasterization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RenderStats {
    /// Triangles submitted by the scene.
    pub triangles_submitted: usize,
    /// Triangles rejected by view-frustum culling before clipping.
    pub triangles_culled: usize,
    /// Triangles surviving near-plane clipping (post-fan count).
    pub triangles_rasterized: usize,
    /// Pixels that passed the depth test and were shaded.
    pub pixels_shaded: usize,
}

/// A post-transform vertex ready for rasterization setup.
#[derive(Debug, Clone, Copy)]
struct ClipVertex {
    /// Position in view space (camera at origin, looking down −Z).
    view: Vec3,
    uv: (f32, f32),
}

impl ClipVertex {
    fn lerp(self, other: ClipVertex, t: f32) -> ClipVertex {
        ClipVertex {
            view: self.view + (other.view - self.view) * t,
            uv: (
                self.uv.0 + (other.uv.0 - self.uv.0) * t,
                self.uv.1 + (other.uv.1 - self.uv.1) * t,
            ),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ScreenVertex {
    x: f32,
    y: f32,
    /// 1 / view distance (view distance = −z_view).
    inv_w: f32,
    u_over_w: f32,
    v_over_w: f32,
}

/// A projected triangle with its screen bounding box, ready for shading.
struct PreparedTri<'a> {
    sv: [ScreenVertex; 3],
    inv_area: f32,
    min_x: usize,
    max_x: usize,
    min_y: usize,
    max_y: usize,
    texture: &'a ProceduralTexture,
    brightness: f32,
}

/// One color + depth sample of the in-flight framebuffer.
#[derive(Clone, Copy)]
struct PixelSample {
    color: Color,
    depth: f32,
}

/// Renders `scene` from `camera` into a `width x height` frame + depth map.
///
/// The pipeline runs in two stages. Vertex processing, primitive assembly,
/// culling, clipping and projection are serial per-triangle work that
/// fixes the triangle submission order. Pixel shading then fans out one
/// scanline per [`gss_platform::pool`] task: every row walks the prepared
/// triangles in submission order, so each pixel sees the exact depth-test
/// sequence of the serial rasterizer and the image is bit-identical at
/// any worker count.
///
/// # Panics
///
/// Panics when either dimension is zero.
pub fn render(scene: &Scene, camera: &Camera, width: usize, height: usize) -> RenderOutput {
    assert!(width > 0 && height > 0, "render target must be nonzero");
    let mut stats = RenderStats::default();

    let view = camera.view_matrix();
    let aspect = width as f32 / height as f32;
    let proj = camera.projection_matrix(aspect);
    // light direction expressed in view space for camera-attached meshes
    let light_view = view.transform_dir(scene.light_dir).normalized();

    let mut tris: Vec<PreparedTri<'_>> = Vec::new();
    for object in &scene.objects {
        let (to_view, light): (Option<&Mat4>, Vec3) = match object.attachment {
            Attachment::World => (Some(&view), scene.light_dir),
            Attachment::CameraRelative => (None, light_view),
        };
        for tri in &object.mesh.triangles {
            let verts = [
                object.mesh.vertices[tri[0]],
                object.mesh.vertices[tri[1]],
                object.mesh.vertices[tri[2]],
            ];
            let cv: Vec<ClipVertex> = verts
                .iter()
                .map(|v| ClipVertex {
                    view: match to_view {
                        Some(m) => m.transform_point(v.position),
                        None => v.position,
                    },
                    uv: v.uv,
                })
                .collect();

            stats.triangles_submitted += 1;
            if frustum_culled(&cv, camera, aspect) {
                stats.triangles_culled += 1;
                continue;
            }

            // lighting uses the face normal in the attachment space
            let e1 = verts[1].position - verts[0].position;
            let e2 = verts[2].position - verts[0].position;
            let normal = e1.cross(e2).normalized();
            let lambert = normal.dot(light).abs();
            let brightness = scene.ambient + (1.0 - scene.ambient) * lambert;

            for clipped in clip_near(&cv, camera.near) {
                stats.triangles_rasterized += 1;
                if let Some(prepared) =
                    setup_triangle(&clipped, &proj, width, height, &object.texture, brightness)
                {
                    tris.push(prepared);
                }
            }
        }
    }

    let shaded = AtomicUsize::new(0);
    let depth_span = camera.far - camera.near;
    let sky = scene.sky_color;
    let pixels = gss_platform::pool::build_rows(
        width,
        height,
        PixelSample {
            color: sky,
            depth: 1.0,
        },
        |y, row| {
            // subtle vertical sky gradient so the background is not
            // perfectly flat
            let t = y as f32 / height as f32;
            let sky_row = shade(sky, 1.08 - 0.16 * t);
            for p in row.iter_mut() {
                p.color = sky_row;
            }
            let mut count = 0usize;
            for tri in &tris {
                if y >= tri.min_y && y <= tri.max_y {
                    count += shade_row(tri, y, row, scene, camera.near, depth_span);
                }
            }
            shaded.fetch_add(count, Ordering::Relaxed);
        },
    );
    stats.pixels_shaded = shaded.load(Ordering::Relaxed);

    // color conversion is a pure per-pixel map: convert row-parallel and
    // assemble the frame from planes (same conversion as `from_rgb_fn`)
    let rows = gss_platform::pool::map_indexed(height, |y| {
        let mut yr = Vec::with_capacity(width);
        let mut cbr = Vec::with_capacity(width);
        let mut crr = Vec::with_capacity(width);
        for p in &pixels[y * width..(y + 1) * width] {
            let c = p.color;
            let (yy, cb, cr) = Rgb8::new(
                c[0].round().clamp(0.0, 255.0) as u8,
                c[1].round().clamp(0.0, 255.0) as u8,
                c[2].round().clamp(0.0, 255.0) as u8,
            )
            .to_ycbcr();
            yr.push(yy);
            cbr.push(cb);
            crr.push(cr);
        }
        (yr, cbr, crr)
    });
    let mut yp = Vec::with_capacity(width * height);
    let mut cbp = Vec::with_capacity(width * height);
    let mut crp = Vec::with_capacity(width * height);
    for (yr, cbr, crr) in rows {
        yp.extend(yr);
        cbp.extend(cbr);
        crp.extend(crr);
    }
    let plane = |data: Vec<f32>| Plane::from_vec(width, height, data).expect("rows cover frame");
    let frame =
        Frame::from_planes(plane(yp), plane(cbp), plane(crp)).expect("planes share one size");
    let depth_data: Vec<f32> = pixels.iter().map(|p| p.depth).collect();
    let depth = DepthMap::from_plane(
        Plane::from_vec(width, height, depth_data).expect("buffer matches plane size"),
    );
    RenderOutput {
        frame,
        depth,
        stats,
    }
}

/// Conservative view-frustum rejection: a triangle is culled only when all
/// three vertices are in front of the near plane *and* all lie outside the
/// same lateral frustum plane (the cheap common case; partial overlaps fall
/// through to clipping + per-pixel coverage).
fn frustum_culled(tri: &[ClipVertex], camera: &Camera, aspect: f32) -> bool {
    // everything behind the eye is dropped by near-plane clipping anyway
    if tri.iter().all(|v| v.view.z > -camera.near) {
        return true;
    }
    // only cull laterally when all vertices are safely in front (w > 0)
    if !tri.iter().all(|v| v.view.z <= -camera.near) {
        return false;
    }
    let tan_half = (camera.fov_y * 0.5).tan();
    let mut out_left = true;
    let mut out_right = true;
    let mut out_top = true;
    let mut out_bottom = true;
    for v in tri {
        let limit_y = -v.view.z * tan_half;
        let limit_x = limit_y * aspect;
        out_left &= v.view.x < -limit_x;
        out_right &= v.view.x > limit_x;
        out_bottom &= v.view.y < -limit_y;
        out_top &= v.view.y > limit_y;
    }
    out_left || out_right || out_top || out_bottom
}

/// Sutherland–Hodgman clip of a triangle against the near plane
/// (`z_view <= -near` is kept), fanned back into triangles.
fn clip_near(tri: &[ClipVertex], near: f32) -> Vec<[ClipVertex; 3]> {
    let inside = |v: &ClipVertex| v.view.z <= -near;
    let mut poly: Vec<ClipVertex> = Vec::with_capacity(4);
    for i in 0..3 {
        let a = tri[i];
        let b = tri[(i + 1) % 3];
        let a_in = inside(&a);
        let b_in = inside(&b);
        if a_in {
            poly.push(a);
        }
        if a_in != b_in {
            // intersection with z = -near
            let t = (-near - a.view.z) / (b.view.z - a.view.z);
            poly.push(a.lerp(b, t));
        }
    }
    match poly.len() {
        0..=2 => Vec::new(),
        n => (1..n - 1)
            .map(|i| [poly[0], poly[i], poly[i + 1]])
            .collect(),
    }
}

#[inline]
fn edge(ax: f32, ay: f32, bx: f32, by: f32, px: f32, py: f32) -> f32 {
    (bx - ax) * (py - ay) - (by - ay) * (px - ax)
}

/// Projects one clipped triangle to screen space and computes its pixel
/// bounding box. `None` for degenerate or off-screen triangles.
fn setup_triangle<'a>(
    tri: &[ClipVertex; 3],
    proj: &Mat4,
    width: usize,
    height: usize,
    texture: &'a ProceduralTexture,
    brightness: f32,
) -> Option<PreparedTri<'a>> {
    let mut sv = [ScreenVertex {
        x: 0.0,
        y: 0.0,
        inv_w: 0.0,
        u_over_w: 0.0,
        v_over_w: 0.0,
    }; 3];
    for (i, v) in tri.iter().enumerate() {
        let clip = proj.mul_vec4(crate::math::Vec4::from_point(v.view));
        if clip.w <= f32::EPSILON {
            return None; // behind the eye; clipping should prevent this
        }
        let inv_w = 1.0 / clip.w;
        sv[i] = ScreenVertex {
            x: (clip.x * inv_w + 1.0) * 0.5 * width as f32,
            y: (1.0 - clip.y * inv_w) * 0.5 * height as f32,
            inv_w,
            u_over_w: v.uv.0 * inv_w,
            v_over_w: v.uv.1 * inv_w,
        };
    }

    let area = edge(sv[0].x, sv[0].y, sv[1].x, sv[1].y, sv[2].x, sv[2].y);
    if area.abs() < 1e-6 {
        return None;
    }
    let inv_area = 1.0 / area;

    let min_x = sv
        .iter()
        .map(|v| v.x)
        .fold(f32::INFINITY, f32::min)
        .floor()
        .max(0.0) as usize;
    let max_x = (sv
        .iter()
        .map(|v| v.x)
        .fold(f32::NEG_INFINITY, f32::max)
        .ceil() as usize)
        .min(width.saturating_sub(1));
    let min_y = sv
        .iter()
        .map(|v| v.y)
        .fold(f32::INFINITY, f32::min)
        .floor()
        .max(0.0) as usize;
    let max_y = (sv
        .iter()
        .map(|v| v.y)
        .fold(f32::NEG_INFINITY, f32::max)
        .ceil() as usize)
        .min(height.saturating_sub(1));
    if min_x > max_x || min_y > max_y {
        return None;
    }
    Some(PreparedTri {
        sv,
        inv_area,
        min_x,
        max_x,
        min_y,
        max_y,
        texture,
        brightness,
    })
}

/// Shades one scanline of a prepared triangle into `row` (a full image
/// row), returning the number of pixels that passed the depth test. The
/// inline depth test mirrors [`DepthMap::test_and_set`].
fn shade_row(
    tri: &PreparedTri<'_>,
    py: usize,
    row: &mut [PixelSample],
    scene: &Scene,
    near: f32,
    depth_span: f32,
) -> usize {
    let sv = &tri.sv;
    let sy = py as f32 + 0.5;
    let mut shaded = 0usize;
    for (px, sample) in row
        .iter_mut()
        .enumerate()
        .take(tri.max_x + 1)
        .skip(tri.min_x)
    {
        let sx = px as f32 + 0.5;
        let w0 = edge(sv[1].x, sv[1].y, sv[2].x, sv[2].y, sx, sy) * tri.inv_area;
        let w1 = edge(sv[2].x, sv[2].y, sv[0].x, sv[0].y, sx, sy) * tri.inv_area;
        let w2 = 1.0 - w0 - w1;
        if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
            continue;
        }
        let inv_w = w0 * sv[0].inv_w + w1 * sv[1].inv_w + w2 * sv[2].inv_w;
        if inv_w <= 0.0 {
            continue;
        }
        let dist = 1.0 / inv_w;
        let d01 = ((dist - near) / depth_span).clamp(0.0, 1.0);
        if d01 >= sample.depth {
            continue;
        }
        let u = (w0 * sv[0].u_over_w + w1 * sv[1].u_over_w + w2 * sv[2].u_over_w) * dist;
        let v = (w0 * sv[0].v_over_w + w1 * sv[1].v_over_w + w2 * sv[2].v_over_w) * dist;
        let lod = (dist / scene.lod_reference_distance).max(1.0).log2();
        let tex = tri.texture.sample(u, v, lod);
        let lit = shade(tex, tri.brightness);
        let fog = 1.0 - (-scene.fog_density * dist).exp();
        sample.color = mix(lit, scene.sky_color, fog);
        sample.depth = d01;
        shaded += 1;
    }
    shaded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::vec3;
    use crate::mesh::Mesh;
    use crate::scene::Object;

    fn box_scene(z: f32) -> Scene {
        Scene::new().with(Object::world(
            Mesh::cuboid(vec3(-1.0, -1.0, z - 1.0), vec3(1.0, 1.0, z + 1.0), 2.0),
            ProceduralTexture::Checker {
                a: [230.0, 230.0, 230.0],
                b: [30.0, 30.0, 30.0],
                scale: 4.0,
            },
        ))
    }

    #[test]
    fn object_in_front_writes_depth_at_center() {
        let scene = box_scene(-10.0);
        let out = render(&scene, &Camera::new(), 64, 48);
        let center = out.depth.get(32, 24);
        assert!(center < 1.0, "center depth {center}");
        // corners see only sky
        assert_eq!(out.depth.get(0, 0), 1.0);
        assert_eq!(out.depth.get(63, 47), 1.0);
    }

    #[test]
    fn nearer_object_occludes_farther() {
        let scene = box_scene(-20.0).with(Object::world(
            Mesh::cuboid(vec3(-0.5, -0.5, -6.5), vec3(0.5, 0.5, -5.5), 1.0),
            ProceduralTexture::Solid([255.0, 0.0, 0.0]),
        ));
        let out = render(&scene, &Camera::new(), 64, 48);
        let d_center = out.depth.get(32, 24);
        // near box front face at z = -5.5 → depth ≈ (5.5-0.3)/(250-0.3)
        let expected = (5.5 - 0.3) / (250.0 - 0.3);
        assert!(
            (d_center - expected).abs() < 0.01,
            "depth {d_center} vs {expected}"
        );
    }

    #[test]
    fn camera_relative_object_ignores_camera_motion() {
        let hero = Object::camera_relative(
            Mesh::cuboid(vec3(-0.3, -0.5, -2.3), vec3(0.3, 0.2, -1.7), 1.0),
            ProceduralTexture::Solid([10.0, 200.0, 10.0]),
        );
        let scene_a = Scene::new().with(hero.clone());
        let scene_b = Scene::new().with(hero);
        let cam_a = Camera::new();
        let cam_b = Camera {
            position: vec3(5.0, 1.0, -3.0),
            yaw: 0.8,
            ..Camera::new()
        };
        let a = render(&scene_a, &cam_a, 48, 32);
        let b = render(&scene_b, &cam_b, 48, 32);
        assert_eq!(a.depth.plane(), b.depth.plane());
    }

    #[test]
    fn rendering_is_deterministic() {
        let scene = box_scene(-8.0);
        let a = render(&scene, &Camera::new(), 80, 45);
        let b = render(&scene, &Camera::new(), 80, 45);
        assert_eq!(a.frame, b.frame);
        assert_eq!(a.depth, b.depth);
    }

    #[test]
    fn near_surface_has_more_detail_than_far() {
        // one long textured wall receding from the camera: variance of the
        // near half must exceed the far half (mipmap premise, §III-B)
        let wall = Mesh::cuboid(vec3(-4.0, -2.0, -120.0), vec3(-2.0, 2.0, -2.0), 40.0);
        let scene = Scene::new().with(Object::world(
            wall,
            ProceduralTexture::Checker {
                a: [240.0, 240.0, 240.0],
                b: [15.0, 15.0, 15.0],
                scale: 2.0,
            },
        ));
        let cam = Camera {
            yaw: 0.25,
            ..Camera::new()
        };
        let out = render(&scene, &cam, 160, 90);
        let y = out.frame.y();
        // group covered pixels by depth and compare local gradient energy
        let mut near = (0.0f64, 0usize);
        let mut far = (0.0f64, 0usize);
        for yy in 1..89 {
            for xx in 1..159 {
                let d = out.depth.get(xx, yy);
                if d >= 1.0 || out.depth.get(xx + 1, yy) >= 1.0 || out.depth.get(xx, yy + 1) >= 1.0
                {
                    continue;
                }
                let gx = (y.get(xx + 1, yy) - y.get(xx, yy)).abs() as f64;
                let gy = (y.get(xx, yy + 1) - y.get(xx, yy)).abs() as f64;
                let g = gx + gy;
                if d < 0.015 {
                    near.0 += g;
                    near.1 += 1;
                } else if d > 0.04 {
                    far.0 += g;
                    far.1 += 1;
                }
            }
        }
        assert!(
            near.1 > 100 && far.1 > 100,
            "bins too small: {} / {}",
            near.1,
            far.1
        );
        let near_g = near.0 / near.1 as f64;
        let far_g = far.0 / far.1 as f64;
        assert!(near_g > far_g * 1.5, "near {near_g:.2} vs far {far_g:.2}");
    }

    #[test]
    fn partially_behind_camera_geometry_is_clipped_not_dropped() {
        // a ground strip passing under the camera: visible region ahead
        let ground = Mesh::ground(-1.5, 50.0, 10, 2.0);
        let scene = Scene::new().with(Object::world(
            ground,
            ProceduralTexture::Solid([100.0, 100.0, 100.0]),
        ));
        let out = render(&scene, &Camera::new(), 64, 48);
        // bottom rows should be covered by ground
        let covered = (0..64).filter(|&x| out.depth.get(x, 46) < 1.0).count();
        assert!(covered > 56, "covered {covered}");
    }

    #[test]
    fn depth_increases_with_distance_along_ground() {
        let ground = Mesh::ground(-1.5, 80.0, 16, 2.0);
        let scene = Scene::new().with(Object::world(
            ground,
            ProceduralTexture::Solid([90.0, 120.0, 90.0]),
        ));
        let out = render(&scene, &Camera::new(), 64, 64);
        // walking up the image from the bottom = farther ground
        let d_bottom = out.depth.get(32, 60);
        let d_mid = out.depth.get(32, 42);
        assert!(d_bottom < d_mid, "{d_bottom} vs {d_mid}");
    }
}

#[cfg(test)]
mod culling_tests {
    use super::*;
    use crate::math::vec3;
    use crate::mesh::Mesh;
    use crate::scene::Object;
    use crate::texture::ProceduralTexture;

    fn box_at(z: f32, x: f32) -> Object {
        Object::world(
            Mesh::cuboid(
                vec3(x - 1.0, -1.0, z - 1.0),
                vec3(x + 1.0, 1.0, z + 1.0),
                1.0,
            ),
            ProceduralTexture::Solid([200.0, 10.0, 10.0]),
        )
    }

    #[test]
    fn behind_camera_geometry_is_culled() {
        let scene = Scene::new().with(box_at(20.0, 0.0)); // behind (+z)
        let out = render(&scene, &Camera::new(), 32, 32);
        assert_eq!(out.stats.triangles_submitted, 12);
        assert_eq!(out.stats.triangles_culled, 12);
        assert_eq!(out.stats.triangles_rasterized, 0);
        assert_eq!(out.stats.pixels_shaded, 0);
    }

    #[test]
    fn far_lateral_geometry_is_culled() {
        let scene = Scene::new().with(box_at(-10.0, 500.0)); // way off to the right
        let out = render(&scene, &Camera::new(), 32, 32);
        assert_eq!(out.stats.triangles_culled, 12);
        assert_eq!(out.stats.pixels_shaded, 0);
    }

    #[test]
    fn visible_geometry_is_not_culled_and_shades_pixels() {
        let scene = Scene::new().with(box_at(-10.0, 0.0));
        let out = render(&scene, &Camera::new(), 64, 64);
        assert_eq!(out.stats.triangles_culled, 0);
        assert!(out.stats.triangles_rasterized >= 12);
        assert!(out.stats.pixels_shaded > 100);
    }

    #[test]
    fn culling_does_not_change_the_image() {
        // a scene mixing visible, lateral and behind-camera geometry must
        // produce pixels identical to what per-pixel coverage would give
        let scene = Scene::new()
            .with(box_at(-12.0, 0.0))
            .with(box_at(-12.0, 300.0))
            .with(box_at(15.0, 0.0));
        let visible_only = Scene::new().with(box_at(-12.0, 0.0));
        let a = render(&scene, &Camera::new(), 48, 48);
        let b = render(&visible_only, &Camera::new(), 48, 48);
        assert_eq!(a.frame, b.frame);
        assert_eq!(a.depth, b.depth);
        assert!(a.stats.triangles_culled >= 12);
    }

    #[test]
    fn game_scenes_cull_a_meaningful_fraction() {
        // scene generators scatter geometry all around; a moving camera
        // should leave a good share of it outside the frustum
        let w = crate::scenes::GameWorkload::new(crate::scenes::GameId::G2);
        let out = w.render_frame(0, 96, 54);
        let s = out.stats;
        assert_eq!(s.triangles_submitted, w.scene().triangle_count());
        assert!(
            s.triangles_culled * 10 >= s.triangles_submitted,
            "only {}/{} culled",
            s.triangles_culled,
            s.triangles_submitted
        );
    }
}
