//! Perspective camera and deterministic scripted camera paths.

use crate::math::{vec3, Mat4, Vec3};

/// A perspective camera (the player's viewpoint).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Eye position in world space.
    pub position: Vec3,
    /// Heading around +Y in radians (0 looks down −Z).
    pub yaw: f32,
    /// Elevation in radians (positive looks up).
    pub pitch: f32,
    /// Vertical field of view in radians.
    pub fov_y: f32,
    /// Near clip plane distance (> 0).
    pub near: f32,
    /// Far plane distance used for depth normalization.
    pub far: f32,
}

impl Camera {
    /// A camera at the origin looking down −Z with a 60° FOV.
    pub fn new() -> Self {
        Camera {
            position: Vec3::ZERO,
            yaw: 0.0,
            pitch: 0.0,
            fov_y: 60f32.to_radians(),
            near: 0.3,
            far: 250.0,
        }
    }

    /// Unit forward vector derived from yaw/pitch.
    pub fn forward(&self) -> Vec3 {
        let (sy, cy) = self.yaw.sin_cos();
        let (sp, cp) = self.pitch.sin_cos();
        vec3(-sy * cp, sp, -cy * cp)
    }

    /// World → view matrix.
    pub fn view_matrix(&self) -> Mat4 {
        Mat4::look_at(self.position, self.position + self.forward(), Vec3::UP)
    }

    /// View → clip matrix for the given aspect ratio.
    pub fn projection_matrix(&self, aspect: f32) -> Mat4 {
        Mat4::perspective(self.fov_y, aspect, self.near, self.far)
    }
}

impl Default for Camera {
    fn default() -> Self {
        Camera::new()
    }
}

/// A deterministic parametric camera script: linear travel plus head-bob and
/// yaw sway, standing in for recorded player input traces (see `DESIGN.md`).
/// Frame index `t` advances the script at 60 FPS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraPath {
    /// Position at `t = 0`.
    pub start: Vec3,
    /// Translation per frame.
    pub velocity: Vec3,
    /// Heading at `t = 0` (radians).
    pub yaw0: f32,
    /// Heading change per frame (radians).
    pub yaw_rate: f32,
    /// Fixed pitch (radians).
    pub pitch: f32,
    /// Vertical head-bob amplitude (world units).
    pub bob_amplitude: f32,
    /// Head-bob angular frequency (radians per frame).
    pub bob_frequency: f32,
    /// Yaw sway amplitude (radians).
    pub sway_amplitude: f32,
    /// Yaw sway angular frequency (radians per frame).
    pub sway_frequency: f32,
    /// Vertical field of view (radians).
    pub fov_y: f32,
    /// Far plane for depth normalization.
    pub far: f32,
}

impl CameraPath {
    /// A stationary path at `start` looking along `yaw0`.
    pub fn stationary(start: Vec3, yaw0: f32) -> Self {
        CameraPath {
            start,
            velocity: Vec3::ZERO,
            yaw0,
            yaw_rate: 0.0,
            pitch: 0.0,
            bob_amplitude: 0.0,
            bob_frequency: 0.0,
            sway_amplitude: 0.0,
            sway_frequency: 0.0,
            fov_y: 60f32.to_radians(),
            far: 250.0,
        }
    }

    /// The camera at frame `t`.
    pub fn camera_at(&self, t: usize) -> Camera {
        let tf = t as f32;
        let bob = self.bob_amplitude * (self.bob_frequency * tf).sin();
        let sway = self.sway_amplitude * (self.sway_frequency * tf).sin();
        Camera {
            position: self.start + self.velocity * tf + vec3(0.0, bob, 0.0),
            yaw: self.yaw0 + self.yaw_rate * tf + sway,
            pitch: self.pitch,
            fov_y: self.fov_y,
            near: 0.3,
            far: self.far,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_yaw_zero() {
        let c = Camera::new();
        let f = c.forward();
        assert!((f.z + 1.0).abs() < 1e-6 && f.x.abs() < 1e-6);
    }

    #[test]
    fn forward_yaw_quarter_turn_looks_down_negative_x() {
        let c = Camera {
            yaw: std::f32::consts::FRAC_PI_2,
            ..Camera::new()
        };
        let f = c.forward();
        assert!((f.x + 1.0).abs() < 1e-6, "{f:?}");
    }

    #[test]
    fn stationary_path_does_not_move() {
        let p = CameraPath::stationary(vec3(1.0, 2.0, 3.0), 0.5);
        assert_eq!(p.camera_at(0).position, p.camera_at(100).position);
        assert_eq!(p.camera_at(0).yaw, p.camera_at(100).yaw);
    }

    #[test]
    fn velocity_integrates_linearly() {
        let p = CameraPath {
            velocity: vec3(0.0, 0.0, -0.5),
            ..CameraPath::stationary(Vec3::ZERO, 0.0)
        };
        let c = p.camera_at(10);
        assert!((c.position.z + 5.0).abs() < 1e-5);
    }

    #[test]
    fn bob_is_periodic_and_bounded() {
        let p = CameraPath {
            bob_amplitude: 0.2,
            bob_frequency: 0.3,
            ..CameraPath::stationary(Vec3::ZERO, 0.0)
        };
        for t in 0..100 {
            assert!(p.camera_at(t).position.y.abs() <= 0.2 + 1e-6);
        }
    }
}
