//! Rendering invariants across arbitrary cameras and all game workloads.

use gss_render::math::vec3;
use gss_render::mesh::Mesh;
use gss_render::scene::Object;
use gss_render::texture::ProceduralTexture;
use gss_render::{render, Camera, GameId, GameWorkload, Scene};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn arbitrary_cameras_never_panic_and_keep_depth_in_range(
        px in -30.0f32..30.0, py in -5.0f32..15.0, pz in -30.0f32..30.0,
        yaw in -3.2f32..3.2, pitch in -1.2f32..1.2,
        fov in 0.4f32..2.4,
    ) {
        let scene = Scene::new().with(Object::world(
            Mesh::cuboid(vec3(-4.0, -1.0, -14.0), vec3(4.0, 3.0, -6.0), 3.0),
            ProceduralTexture::Checker {
                a: [220.0, 220.0, 220.0],
                b: [30.0, 30.0, 30.0],
                scale: 5.0,
            },
        ));
        let camera = Camera {
            position: vec3(px, py, pz),
            yaw,
            pitch,
            fov_y: fov,
            ..Camera::new()
        };
        let out = render(&scene, &camera, 48, 32);
        for &d in out.depth.plane().iter() {
            prop_assert!((0.0..=1.0).contains(&d));
        }
        prop_assert_eq!(out.frame.size(), (48, 32));
        // the stats account for every submitted triangle
        prop_assert!(out.stats.triangles_culled <= out.stats.triangles_submitted);
    }

    #[test]
    fn frame_samples_stay_in_8bit_range(game_idx in 0usize..10, t in 0usize..40) {
        let game = GameId::ALL[game_idx];
        let out = GameWorkload::new(game).render_frame(t, 64, 36);
        for plane in out.frame.planes() {
            let (lo, hi) = plane.min_max();
            prop_assert!(lo >= 0.0 && hi <= 255.0, "{game}: {lo}..{hi}");
        }
    }
}

#[test]
fn covered_pixels_have_non_far_depth_and_vice_versa() {
    // depth 1.0 must mean sky (background color family), depth < 1.0 must
    // mean geometry was shaded there
    let w = GameWorkload::new(GameId::G2);
    let out = w.render_frame(3, 96, 54);
    let sky = w.scene().sky_color;
    let mut sky_like = 0;
    let mut sky_total = 0;
    for y in 0..54 {
        for x in 0..96 {
            if out.depth.get(x, y) >= 1.0 {
                sky_total += 1;
                // the sky gradient scales the base color by 0.92..1.08
                let px = out.frame.to_rgb8()[y * 96 + x];
                let near_sky =
                    (px.r as f32 - sky[0]).abs() < 40.0 && (px.b as f32 - sky[2]).abs() < 40.0;
                if near_sky {
                    sky_like += 1;
                }
            }
        }
    }
    assert!(sky_total > 0, "scene has no sky");
    assert!(
        sky_like * 10 >= sky_total * 9,
        "{sky_like}/{sky_total} sky pixels look like sky"
    );
}

#[test]
fn stats_pixels_shaded_bounded_by_framebuffer() {
    for game in [GameId::G1, GameId::G5, GameId::G9] {
        let out = GameWorkload::new(game).render_frame(0, 80, 45);
        // overdraw exists, but shaded pixel count cannot exceed a small
        // multiple of the framebuffer (depth test rejects most rewrites)
        assert!(
            out.stats.pixels_shaded <= 80 * 45 * 4,
            "{game}: {} shaded",
            out.stats.pixels_shaded
        );
        assert!(out.stats.pixels_shaded > 0);
    }
}
